//! Offline, API-compatible shim for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment of this repository cannot reach a crates registry,
//! so this crate implements the (small) subset of criterion's API that the
//! workspace's bench targets use: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is first calibrated (the iteration
//! count is doubled until one sample takes at least ~5 ms), then
//! `sample_size` timed samples are collected and the per-iteration minimum,
//! mean and maximum are reported. Passing `--test` on the command line (what
//! `cargo bench -- --test` forwards) runs every benchmark body exactly once
//! as a smoke test, which CI uses.
//!
//! Machine-readable results: when the `CPS_BENCH_JSON` environment variable
//! names a file, every measured benchmark merges its mean ns/iter into that
//! file as a flat JSON object (`{"group/bench": ns, ...}`). When
//! `CPS_BENCH_KEY` is additionally set (ci.sh exports `git describe
//! --always --dirty`), results are nested one level deeper under that key
//! (`{"<commit>": {"group/bench": ns, ...}, ...}`), turning the file into a
//! per-commit performance *history*: re-running a commit upserts its own
//! entries, new commits append, old commits are never touched. Legacy flat
//! entries are preserved under the key `"unkeyed"`. Bench targets run as
//! separate processes, so the file is re-read and re-written per result;
//! `ci.sh perf` uses this to maintain `BENCH_results.json`, the
//! repository's performance trajectory.

use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter value.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Creates an identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into the string id under which a benchmark is reported.
pub trait IntoBenchmarkId {
    /// The reported benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handed to the benchmark closure; `iter` runs and times the payload.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations and records the
    /// elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    test_mode: bool,
    sample_size: usize,
}

/// The benchmark manager: entry point handed to every bench function.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { settings: Settings { test_mode, sample_size: 20 } }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings, _criterion: self }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.into_benchmark_id(), self.settings, f);
        self
    }
}

/// A group of related benchmarks sharing settings and a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&id, self.settings, f);
        self
    }

    /// Benchmarks `f` with an input value under `group_name/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        run_benchmark(&id, self.settings, |b| f(b, input));
        self
    }

    /// Finishes the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, mut f: F) {
    if settings.test_mode {
        let mut bencher = Bencher { iterations: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        println!("Testing {id} ... ok");
        return;
    }

    // Calibrate: double the iteration count until one sample costs >= 5 ms.
    let mut iterations: u64 = 1;
    loop {
        let mut bencher = Bencher { iterations, elapsed: Duration::ZERO };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(5) || iterations >= 1 << 30 {
            break;
        }
        iterations *= 2;
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut bencher = Bencher { iterations, elapsed: Duration::ZERO };
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iterations as f64);
    }
    let min = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter_ns.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{id:<55} time: [{} {} {}] ({} samples x {} iters)",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        per_iter_ns.len(),
        iterations,
    );
    record_json_result(id, mean);
}

/// Merges `id -> mean_ns` into the JSON file named by `CPS_BENCH_JSON`
/// (no-op when the variable is unset). With `CPS_BENCH_KEY` set, the entry
/// is nested under that key (per-commit history); otherwise the file is the
/// legacy flat map. The file is always rewritten in the exact format the
/// merge functions produce, so re-reading it only has to parse
/// `"key": value` / `"key": {` lines; benchmark ids and history keys never
/// contain quotes or backslashes.
fn record_json_result(id: &str, mean_ns: f64) {
    let Ok(path) = std::env::var("CPS_BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let merged = match std::env::var("CPS_BENCH_KEY") {
        Ok(key) if !key.is_empty() => merge_json_keyed(&existing, &key, id, mean_ns),
        // No key, but the file already carries per-commit history: record
        // under "unkeyed" rather than flattening (and thereby destroying)
        // the committed trajectory.
        _ if is_keyed(&existing) => merge_json_keyed(&existing, "unkeyed", id, mean_ns),
        _ => merge_json(&existing, id, mean_ns),
    };
    let _ = std::fs::write(&path, merged);
}

/// Whether the existing results file is in the keyed per-commit format.
fn is_keyed(existing: &str) -> bool {
    existing.lines().any(|line| line.trim().trim_end_matches(',').ends_with("\": {"))
}

/// Parses the (flat or keyed) line format the merge functions emit into
/// `(history_key, bench_id, mean_ns)` triples; flat entries carry the key
/// `"unkeyed"`.
fn parse_entries(existing: &str) -> Vec<(String, String, f64)> {
    let mut entries: Vec<(String, String, f64)> = Vec::new();
    let mut group: Option<String> = None;
    for line in existing.lines() {
        let line = line.trim().trim_end_matches(',');
        if line == "{" || line == "}" {
            continue;
        }
        if let Some(key) = line.strip_prefix('"').and_then(|rest| rest.strip_suffix("\": {")) {
            group = Some(key.to_string());
            continue;
        }
        if let Some((key, value)) = line.strip_prefix('"').and_then(|rest| rest.split_once("\": "))
        {
            if let Ok(ns) = value.trim().parse::<f64>() {
                let group = group.clone().unwrap_or_else(|| "unkeyed".to_string());
                entries.push((group, key.to_string(), ns));
            }
        }
    }
    entries
}

/// Pure merge step for the legacy flat map: upserts `id` and renders the
/// updated JSON object. Only called on flat input —
/// [`record_json_result`] routes keyed files through
/// [`merge_json_keyed`] even when `CPS_BENCH_KEY` is unset.
fn merge_json(existing: &str, id: &str, mean_ns: f64) -> String {
    let mut entries: Vec<(String, f64)> =
        parse_entries(existing).into_iter().map(|(_, key, ns)| (key, ns)).collect();
    match entries.iter_mut().find(|(key, _)| key == id) {
        Some(entry) => entry.1 = mean_ns,
        None => entries.push((id.to_string(), mean_ns)),
    }
    let mut out = String::from("{\n");
    for (index, (key, ns)) in entries.iter().enumerate() {
        let separator = if index + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!("\"{key}\": {ns:.2}{separator}\n"));
    }
    out.push_str("}\n");
    out
}

/// Pure merge step for the keyed history: upserts `(history_key, id)`,
/// preserving every other commit's entries and the first-seen order of both
/// keys and benchmarks.
fn merge_json_keyed(existing: &str, history_key: &str, id: &str, mean_ns: f64) -> String {
    let mut entries = parse_entries(existing);
    match entries.iter_mut().find(|(group, key, _)| group == history_key && key == id) {
        Some(entry) => entry.2 = mean_ns,
        None => entries.push((history_key.to_string(), id.to_string(), mean_ns)),
    }
    // Group order = first appearance.
    let mut groups: Vec<&str> = Vec::new();
    for (group, _, _) in &entries {
        if !groups.iter().any(|existing| existing == group) {
            groups.push(group);
        }
    }
    let mut out = String::from("{\n");
    for (group_index, group) in groups.iter().enumerate() {
        out.push_str(&format!("\"{group}\": {{\n"));
        let members: Vec<&(String, String, f64)> =
            entries.iter().filter(|(g, _, _)| g == group).collect();
        for (index, (_, key, ns)) in members.iter().enumerate() {
            let separator = if index + 1 < members.len() { "," } else { "" };
            out.push_str(&format!("\"{key}\": {ns:.2}{separator}\n"));
        }
        let separator = if group_index + 1 < groups.len() { "," } else { "" };
        out.push_str(&format!("}}{separator}\n"));
    }
    out.push_str("}\n");
    out
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function running a list of bench functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).into_benchmark_id(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).into_benchmark_id(), "8");
        assert_eq!("plain".into_benchmark_id(), "plain");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        let mut bencher = Bencher { iterations: 5, elapsed: Duration::ZERO };
        bencher.iter(|| count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn merge_json_upserts_and_roundtrips() {
        let first = merge_json("", "group/bench", 123.456);
        assert!(first.starts_with("{\n"));
        assert!(first.contains("\"group/bench\": 123.46"));
        // Upsert keeps one entry per id, adds new ones, preserves order.
        let second = merge_json(&first, "other/bench", 9.0);
        let third = merge_json(&second, "group/bench", 50.0);
        assert!(third.contains("\"group/bench\": 50.00"));
        assert!(third.contains("\"other/bench\": 9.00"));
        assert_eq!(third.matches("group/bench").count(), 1);
        assert!(third.find("group/bench").unwrap() < third.find("other/bench").unwrap());
        // The output stays parseable by its own reader.
        let fourth = merge_json(&third, "third", 1.0);
        assert_eq!(fourth.lines().count(), 5); // {, 3 entries, }
    }

    #[test]
    fn merge_json_keyed_appends_history_and_upserts_within_a_key() {
        // First commit.
        let a = merge_json_keyed("", "abc1234", "g/bench", 100.0);
        assert!(a.contains("\"abc1234\": {"));
        assert!(a.contains("\"g/bench\": 100.00"));
        // Second benchmark of the same commit.
        let b = merge_json_keyed(&a, "abc1234", "g/other", 7.5);
        assert_eq!(b.matches("abc1234").count(), 1);
        assert!(b.contains("\"g/other\": 7.50"));
        // A new commit appends; the old commit's entries survive untouched.
        let c = merge_json_keyed(&b, "def5678", "g/bench", 90.0);
        assert!(c.contains("\"abc1234\": {"));
        assert!(c.contains("\"def5678\": {"));
        assert!(c.contains("\"g/bench\": 100.00"));
        assert!(c.contains("\"g/bench\": 90.00"));
        assert!(c.find("abc1234").unwrap() < c.find("def5678").unwrap());
        // Re-running a commit upserts only its own entry.
        let d = merge_json_keyed(&c, "abc1234", "g/bench", 110.0);
        assert!(d.contains("\"g/bench\": 110.00"));
        assert!(d.contains("\"g/bench\": 90.00"));
        assert!(!d.contains("100.00"));
        // The output stays parseable by its own reader.
        let entries = parse_entries(&d);
        assert_eq!(entries.len(), 3);
        assert!(entries.contains(&("abc1234".to_string(), "g/bench".to_string(), 110.0)));
        assert!(entries.contains(&("abc1234".to_string(), "g/other".to_string(), 7.5)));
        assert!(entries.contains(&("def5678".to_string(), "g/bench".to_string(), 90.0)));
    }

    #[test]
    fn legacy_flat_results_migrate_under_the_unkeyed_key() {
        let flat = merge_json("", "g/bench", 123.0);
        let keyed = merge_json_keyed(&flat, "abc1234", "g/new", 1.0);
        let entries = parse_entries(&keyed);
        assert!(entries.contains(&("unkeyed".to_string(), "g/bench".to_string(), 123.0)));
        assert!(entries.contains(&("abc1234".to_string(), "g/new".to_string(), 1.0)));
    }

    #[test]
    fn keyed_history_is_detected_and_never_flattened() {
        let flat = merge_json("", "g/bench", 123.0);
        assert!(!is_keyed(&flat));
        let keyed = merge_json_keyed(&flat, "abc1234", "g/new", 1.0);
        assert!(is_keyed(&keyed));
        // A keyless run against a keyed file must land under "unkeyed"
        // (this is what record_json_result does when CPS_BENCH_KEY is
        // unset), preserving every commit's history.
        let merged = merge_json_keyed(&keyed, "unkeyed", "g/bench", 50.0);
        let entries = parse_entries(&merged);
        assert!(entries.contains(&("unkeyed".to_string(), "g/bench".to_string(), 50.0)));
        assert!(entries.contains(&("abc1234".to_string(), "g/new".to_string(), 1.0)));
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(10.0).ends_with("ns"));
        assert!(format_ns(10_000.0).ends_with("us"));
        assert!(format_ns(10_000_000.0).ends_with("ms"));
        assert!(format_ns(10_000_000_000.0).ends_with(" s"));
    }
}
