//! The hand-rolled, length-prefixed binary wire protocol of the design
//! service.
//!
//! # Framing
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by exactly that many payload bytes. Frames are capped at
//! [`MAX_FRAME`] bytes; a larger announced length is a protocol error (and a
//! bound on how much memory a malicious or corrupted peer can make the
//! server reserve). [`read_frame`] distinguishes a clean close (EOF on the
//! length prefix) from a truncated frame (EOF mid-payload).
//!
//! # Payload encoding
//!
//! Payloads are encoded with [`WireWriter`] / [`WireReader`]: fixed-width
//! little-endian integers, `f64` as raw IEEE-754 bit patterns (decode is
//! bit-exact — the foundation of the service's "served results are
//! bit-identical to a direct call" guarantee), length-prefixed UTF-8
//! strings, and one-byte tags for enums/options. Every read is
//! bounds-checked and returns a structured [`WireError`] — malformed input
//! can never panic, hang, or allocate more than the frame it arrived in
//! (collection lengths are validated against the bytes actually remaining
//! before any allocation).
//!
//! # Content addressing
//!
//! Jobs are cache-keyed by [`content_hash`] (FNV-1a 64) over their canonical
//! encoding: two requests name the same artifact exactly when their job
//! bytes agree, so the artifact cache and the single-flight table need no
//! structural comparison.

use cps_core::{ApplicationSpec, ControllerSpec};
use cps_control::{ContinuousStateSpace, LqrWeights};
use cps_flexray::FlexRayConfig;
use cps_linalg::Matrix;
use cps_sched::{
    AllocationStrategy, AllocatorConfig, AppTimingParams, ModelKind, SlotTiming, WaitTimeMethod,
};
use std::fmt;
use std::io::{self, Read, Write};

/// Maximum frame payload size in bytes (4 MiB).
pub const MAX_FRAME: usize = 1 << 22;

/// Errors produced while decoding a payload. Every variant is a *clean*
/// rejection: the reader never panics and never reads past the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field was complete.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        available: usize,
    },
    /// A field holds an invalid value (unknown tag, non-UTF-8 string,
    /// boolean other than 0/1, collection longer than the bytes behind it).
    Invalid {
        /// What was being decoded.
        what: &'static str,
    },
    /// Decoding finished with unconsumed payload bytes — the frame does not
    /// describe the message it claims to.
    Trailing {
        /// Unconsumed byte count.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated payload: needed {needed} bytes, {available} available")
            }
            WireError::Invalid { what } => write!(f, "invalid {what}"),
            WireError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Payload-decoding result.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// Appends fixed-width little-endian fields to a payload buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh, empty payload.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a boolean as one byte (0/1).
    pub fn put_bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern (bit-exact decode).
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_u32(value.len() as u32);
        self.buf.extend_from_slice(value.as_bytes());
    }

    /// Appends a length-prefixed `f64` sequence.
    pub fn put_f64s(&mut self, values: &[f64]) {
        self.put_u32(values.len() as u32);
        for &value in values {
            self.put_f64(value);
        }
    }
}

/// A bounds-checked cursor over a payload. Every accessor returns
/// [`WireError`] instead of panicking on malformed input.
#[derive(Debug)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over the whole payload.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// Unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails with [`WireError::Trailing`] unless the payload was consumed
    /// exactly.
    pub fn finish(&self) -> WireResult<()> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(WireError::Trailing { remaining }),
        }
    }

    fn take(&mut self, len: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < len {
            return Err(WireError::Truncated { needed: len, available: self.remaining() });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean; bytes other than 0/1 are invalid (corruption shows
    /// up as an error, not as a silently coerced flag).
    pub fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid { what: "boolean" }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a collection length and validates it against the bytes still in
    /// the buffer (each element needs at least `min_element_size` bytes), so
    /// a corrupt length can never trigger a huge allocation.
    pub fn len(&mut self, min_element_size: usize) -> WireResult<usize> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_element_size.max(1)) > self.remaining() {
            return Err(WireError::Invalid { what: "collection length" });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<String> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid { what: "utf-8 string" })
    }

    /// Reads a length-prefixed `f64` sequence.
    pub fn f64s(&mut self) -> WireResult<Vec<f64>> {
        let len = self.len(8)?;
        (0..len).map(|_| self.f64()).collect()
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// `InvalidInput` when the payload exceeds [`MAX_FRAME`]; I/O errors from
/// the underlying writer.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte cap", payload.len()),
        ));
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean close
/// (EOF before any length byte); EOF mid-length or mid-payload is an
/// `UnexpectedEof` error, and an announced length above [`MAX_FRAME`] is an
/// `InvalidData` error *before* any allocation.
///
/// # Errors
///
/// I/O errors from the underlying reader, plus the malformed-frame cases
/// above.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-length-prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("announced frame length {len} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// FNV-1a 64 over a byte string — the content-addressing hash of the
/// artifact cache and the single-flight table.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One design-service request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the [`Response`].
    pub id: u64,
    /// Per-request deadline in milliseconds; `0` means no deadline.
    pub deadline_ms: u32,
    /// Deterministic cap on exact-search nodes; `0` means unbounded. The
    /// degradation ladder's *testable* trigger: exhausting it returns the
    /// greedy incumbent with `certified_optimal = false`.
    pub node_budget: u64,
    /// When `true`, an uncertified (degraded) cache entry is treated as a
    /// miss and the design is recomputed with full certification.
    pub require_certified: bool,
    /// The work to perform.
    pub job: Job,
}

/// The work a request names.
#[derive(Debug, Clone, PartialEq)]
pub enum Job {
    /// Design the fleet and return the exact slot map + timing table.
    Design(DesignJob),
    /// Design (or reuse) the fleet, then sweep the bus geometry, solving the
    /// exact slot optimum for every candidate off the cached timing table.
    Sweep(SweepJob),
    /// Design (or reuse) the fleet, then run a streaming Monte-Carlo
    /// robustness campaign and return the statistical readout.
    Campaign(CampaignJob),
}

/// A complete fleet-design problem: specs + allocator + bus.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignJob {
    /// The application specifications.
    pub specs: Vec<WireAppSpec>,
    /// Allocator configuration (model, method, slot budget, geometry).
    pub alloc: WireAllocatorConfig,
    /// Bus configuration the fleet is designed against.
    pub bus: WireBusConfig,
}

/// A 3-axis bus-geometry sweep over a designed fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// The underlying design (cache key for the artifact reuse).
    pub design: DesignJob,
    /// Candidate cycle lengths in seconds (empty = keep the base value).
    pub cycle_lengths: Vec<f64>,
    /// Candidate static-segment sizes (empty = keep the base value).
    pub static_slot_counts: Vec<u32>,
    /// Candidate static slot lengths Ψ in seconds (empty = keep the base).
    pub slot_lengths: Vec<f64>,
}

/// A robustness campaign over a designed fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJob {
    /// The underlying design (cache key for the artifact reuse).
    pub design: DesignJob,
    /// Campaign seed (the whole campaign is a pure function of it).
    pub seed: u64,
    /// One scenario family per frame-drop probability.
    pub drop_probabilities: Vec<f64>,
    /// Randomised scenarios per intensity.
    pub scenarios_per_intensity: u64,
    /// Simulated duration per scenario in seconds.
    pub duration: f64,
    /// Two-sided confidence level `1 − alpha` of the settling readout.
    pub alpha: f64,
    /// Emit a non-terminal [`Outcome::Progress`] frame roughly every this
    /// many aggregated scenarios; `0` sends only the terminal frame. The
    /// terminal frame is bit-identical either way.
    pub progress_every: u64,
}

/// Wire form of a dense matrix (row-major, bit-exact `f64`s).
#[derive(Debug, Clone, PartialEq)]
pub struct WireMatrix {
    /// Row count.
    pub rows: u32,
    /// Column count.
    pub cols: u32,
    /// Row-major entries (`rows · cols` values).
    pub data: Vec<f64>,
}

impl WireMatrix {
    /// Captures a [`Matrix`].
    pub fn from_matrix(matrix: &Matrix) -> Self {
        WireMatrix {
            rows: matrix.rows() as u32,
            cols: matrix.cols() as u32,
            data: matrix.as_slice().to_vec(),
        }
    }

    /// Rebuilds the [`Matrix`].
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] when the shape and data length disagree.
    pub fn into_matrix(self) -> WireResult<Matrix> {
        Matrix::from_vec(self.rows as usize, self.cols as usize, self.data)
            .map_err(|_| WireError::Invalid { what: "matrix shape" })
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.rows);
        w.put_u32(self.cols);
        w.put_f64s(&self.data);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(WireMatrix { rows: r.u32()?, cols: r.u32()?, data: r.f64s()? })
    }
}

/// Wire form of [`ControllerSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireControllerSpec {
    /// LQR weights for each mode.
    Lqr {
        /// ET-mode state/input weights + previous-input weight.
        et: (WireMatrix, WireMatrix, f64),
        /// TT-mode state/input weights + previous-input weight.
        tt: (WireMatrix, WireMatrix, f64),
    },
    /// Continuous-time target poles per mode.
    PolePlacement {
        /// ET-mode poles.
        et_poles: Vec<f64>,
        /// TT-mode poles.
        tt_poles: Vec<f64>,
    },
}

/// Wire form of [`ApplicationSpec`]: everything the design pipeline needs,
/// with every float carried bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct WireAppSpec {
    /// Application name.
    pub name: String,
    /// Plant state matrix `A`.
    pub a: WireMatrix,
    /// Plant input matrix `B`.
    pub b: WireMatrix,
    /// Plant output matrix `C`.
    pub c: WireMatrix,
    /// Sampling period in seconds.
    pub period: f64,
    /// Worst-case ET sensor-to-actuator delay.
    pub et_delay: f64,
    /// Deterministic TT sensor-to-actuator delay.
    pub tt_delay: f64,
    /// Switching threshold `E_th`.
    pub threshold: f64,
    /// Disturbance state jump.
    pub disturbance: Vec<f64>,
    /// Response-time deadline ξᵈ.
    pub deadline: f64,
    /// Disturbance inter-arrival time `r`.
    pub inter_arrival: f64,
    /// Controller synthesis specification.
    pub controllers: WireControllerSpec,
    /// Optional actuator saturation limit.
    pub input_limit: Option<f64>,
}

impl WireAppSpec {
    /// Captures an [`ApplicationSpec`].
    pub fn from_spec(spec: &ApplicationSpec) -> Self {
        let controllers = match &spec.controllers {
            ControllerSpec::Lqr { et_weights, tt_weights } => WireControllerSpec::Lqr {
                et: (
                    WireMatrix::from_matrix(&et_weights.state),
                    WireMatrix::from_matrix(&et_weights.input),
                    et_weights.previous_input,
                ),
                tt: (
                    WireMatrix::from_matrix(&tt_weights.state),
                    WireMatrix::from_matrix(&tt_weights.input),
                    tt_weights.previous_input,
                ),
            },
            ControllerSpec::PolePlacement { et_poles, tt_poles } => {
                WireControllerSpec::PolePlacement {
                    et_poles: et_poles.clone(),
                    tt_poles: tt_poles.clone(),
                }
            }
        };
        WireAppSpec {
            name: spec.name.clone(),
            a: WireMatrix::from_matrix(spec.plant.a()),
            b: WireMatrix::from_matrix(spec.plant.b()),
            c: WireMatrix::from_matrix(spec.plant.c()),
            period: spec.period,
            et_delay: spec.et_delay,
            tt_delay: spec.tt_delay,
            threshold: spec.threshold,
            disturbance: spec.disturbance.clone(),
            deadline: spec.deadline,
            inter_arrival: spec.inter_arrival,
            controllers,
            input_limit: spec.input_limit,
        }
    }

    /// Rebuilds the [`ApplicationSpec`] (plant validation included).
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] when the matrices do not form a valid plant.
    pub fn into_spec(self) -> WireResult<ApplicationSpec> {
        let plant = ContinuousStateSpace::new(
            self.a.into_matrix()?,
            self.b.into_matrix()?,
            self.c.into_matrix()?,
        )
        .map_err(|_| WireError::Invalid { what: "plant model" })?;
        let controllers = match self.controllers {
            WireControllerSpec::Lqr { et, tt } => ControllerSpec::Lqr {
                et_weights: LqrWeights {
                    state: et.0.into_matrix()?,
                    input: et.1.into_matrix()?,
                    previous_input: et.2,
                },
                tt_weights: LqrWeights {
                    state: tt.0.into_matrix()?,
                    input: tt.1.into_matrix()?,
                    previous_input: tt.2,
                },
            },
            WireControllerSpec::PolePlacement { et_poles, tt_poles } => {
                ControllerSpec::PolePlacement { et_poles, tt_poles }
            }
        };
        Ok(ApplicationSpec {
            name: self.name,
            plant,
            period: self.period,
            et_delay: self.et_delay,
            tt_delay: self.tt_delay,
            threshold: self.threshold,
            disturbance: self.disturbance,
            deadline: self.deadline,
            inter_arrival: self.inter_arrival,
            controllers,
            input_limit: self.input_limit,
        })
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.name);
        self.a.encode(w);
        self.b.encode(w);
        self.c.encode(w);
        w.put_f64(self.period);
        w.put_f64(self.et_delay);
        w.put_f64(self.tt_delay);
        w.put_f64(self.threshold);
        w.put_f64s(&self.disturbance);
        w.put_f64(self.deadline);
        w.put_f64(self.inter_arrival);
        match &self.controllers {
            WireControllerSpec::Lqr { et, tt } => {
                w.put_u8(0);
                et.0.encode(w);
                et.1.encode(w);
                w.put_f64(et.2);
                tt.0.encode(w);
                tt.1.encode(w);
                w.put_f64(tt.2);
            }
            WireControllerSpec::PolePlacement { et_poles, tt_poles } => {
                w.put_u8(1);
                w.put_f64s(et_poles);
                w.put_f64s(tt_poles);
            }
        }
        match self.input_limit {
            None => w.put_u8(0),
            Some(limit) => {
                w.put_u8(1);
                w.put_f64(limit);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let name = r.str()?;
        let a = WireMatrix::decode(r)?;
        let b = WireMatrix::decode(r)?;
        let c = WireMatrix::decode(r)?;
        let period = r.f64()?;
        let et_delay = r.f64()?;
        let tt_delay = r.f64()?;
        let threshold = r.f64()?;
        let disturbance = r.f64s()?;
        let deadline = r.f64()?;
        let inter_arrival = r.f64()?;
        let controllers = match r.u8()? {
            0 => {
                let et_state = WireMatrix::decode(r)?;
                let et_input = WireMatrix::decode(r)?;
                let et_prev = r.f64()?;
                let tt_state = WireMatrix::decode(r)?;
                let tt_input = WireMatrix::decode(r)?;
                let tt_prev = r.f64()?;
                WireControllerSpec::Lqr {
                    et: (et_state, et_input, et_prev),
                    tt: (tt_state, tt_input, tt_prev),
                }
            }
            1 => WireControllerSpec::PolePlacement { et_poles: r.f64s()?, tt_poles: r.f64s()? },
            _ => return Err(WireError::Invalid { what: "controller-spec tag" }),
        };
        let input_limit = match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            _ => return Err(WireError::Invalid { what: "input-limit tag" }),
        };
        Ok(WireAppSpec {
            name,
            a,
            b,
            c,
            period,
            et_delay,
            tt_delay,
            threshold,
            disturbance,
            deadline,
            inter_arrival,
            controllers,
            input_limit,
        })
    }
}

/// Wire form of [`AllocatorConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireAllocatorConfig {
    /// Dwell-time model.
    pub model: ModelKind,
    /// Wait-time method.
    pub method: WaitTimeMethod,
    /// Greedy packing strategy (the exact search ignores it; it still keys
    /// the greedy incumbent).
    pub strategy: AllocationStrategy,
    /// Maximum TT slots.
    pub max_slots: u64,
    /// Per-slot transmission overhead in seconds ([`SlotTiming`]).
    pub slot_overhead: f64,
}

impl WireAllocatorConfig {
    /// Captures an [`AllocatorConfig`].
    pub fn from_config(config: &AllocatorConfig) -> Self {
        WireAllocatorConfig {
            model: config.model,
            method: config.method,
            strategy: config.strategy,
            max_slots: config.max_slots as u64,
            slot_overhead: config.slot_timing.overhead(),
        }
    }

    /// Rebuilds the [`AllocatorConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] on a non-finite or negative slot overhead.
    pub fn into_config(self) -> WireResult<AllocatorConfig> {
        Ok(AllocatorConfig {
            model: self.model,
            method: self.method,
            strategy: self.strategy,
            max_slots: usize::try_from(self.max_slots)
                .map_err(|_| WireError::Invalid { what: "slot budget" })?,
            slot_timing: SlotTiming::new(self.slot_overhead)
                .map_err(|_| WireError::Invalid { what: "slot overhead" })?,
        })
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(match self.model {
            ModelKind::NonMonotonic => 0,
            ModelKind::ConservativeMonotonic => 1,
            ModelKind::SimpleMonotonic => 2,
        });
        w.put_u8(match self.method {
            WaitTimeMethod::ClosedFormBound => 0,
            WaitTimeMethod::ExactFixedPoint => 1,
        });
        w.put_u8(match self.strategy {
            AllocationStrategy::NextFit => 0,
            AllocationStrategy::FirstFit => 1,
            AllocationStrategy::BestFit => 2,
        });
        w.put_u64(self.max_slots);
        w.put_f64(self.slot_overhead);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let model = match r.u8()? {
            0 => ModelKind::NonMonotonic,
            1 => ModelKind::ConservativeMonotonic,
            2 => ModelKind::SimpleMonotonic,
            _ => return Err(WireError::Invalid { what: "model tag" }),
        };
        let method = match r.u8()? {
            0 => WaitTimeMethod::ClosedFormBound,
            1 => WaitTimeMethod::ExactFixedPoint,
            _ => return Err(WireError::Invalid { what: "method tag" }),
        };
        let strategy = match r.u8()? {
            0 => AllocationStrategy::NextFit,
            1 => AllocationStrategy::FirstFit,
            2 => AllocationStrategy::BestFit,
            _ => return Err(WireError::Invalid { what: "strategy tag" }),
        };
        Ok(WireAllocatorConfig {
            model,
            method,
            strategy,
            max_slots: r.u64()?,
            slot_overhead: r.f64()?,
        })
    }
}

/// Wire form of [`FlexRayConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireBusConfig {
    /// Communication cycle length in seconds.
    pub cycle_length: f64,
    /// Static (TT) slots per cycle.
    pub static_slot_count: u64,
    /// Static slot length in seconds.
    pub static_slot_length: f64,
    /// Minislots per cycle.
    pub minislot_count: u64,
    /// Minislot length in seconds.
    pub minislot_length: f64,
}

impl WireBusConfig {
    /// Captures a [`FlexRayConfig`].
    pub fn from_config(config: &FlexRayConfig) -> Self {
        WireBusConfig {
            cycle_length: config.cycle_length,
            static_slot_count: config.static_slot_count as u64,
            static_slot_length: config.static_slot_length,
            minislot_count: config.minislot_count as u64,
            minislot_length: config.minislot_length,
        }
    }

    /// Rebuilds the [`FlexRayConfig`].
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] when a count does not fit `usize`.
    pub fn into_config(self) -> WireResult<FlexRayConfig> {
        Ok(FlexRayConfig {
            cycle_length: self.cycle_length,
            static_slot_count: usize::try_from(self.static_slot_count)
                .map_err(|_| WireError::Invalid { what: "static slot count" })?,
            static_slot_length: self.static_slot_length,
            minislot_count: usize::try_from(self.minislot_count)
                .map_err(|_| WireError::Invalid { what: "minislot count" })?,
            minislot_length: self.minislot_length,
        })
    }

    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(self.cycle_length);
        w.put_u64(self.static_slot_count);
        w.put_f64(self.static_slot_length);
        w.put_u64(self.minislot_count);
        w.put_f64(self.minislot_length);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(WireBusConfig {
            cycle_length: r.f64()?,
            static_slot_count: r.u64()?,
            static_slot_length: r.f64()?,
            minislot_count: r.u64()?,
            minislot_length: r.f64()?,
        })
    }
}

impl DesignJob {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.specs.len() as u32);
        for spec in &self.specs {
            spec.encode(w);
        }
        self.alloc.encode(w);
        self.bus.encode(w);
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let count = r.len(16)?;
        let specs = (0..count).map(|_| WireAppSpec::decode(r)).collect::<WireResult<Vec<_>>>()?;
        Ok(DesignJob { specs, alloc: WireAllocatorConfig::decode(r)?, bus: WireBusConfig::decode(r)? })
    }

    /// Canonical encoding of this design problem — the bytes behind the
    /// artifact-cache key.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Content key of the design artifact this job names.
    pub fn content_key(&self) -> u64 {
        content_hash(&self.canonical_bytes())
    }
}

impl Job {
    /// The design problem embedded in any job kind.
    pub fn design(&self) -> &DesignJob {
        match self {
            Job::Design(design) => design,
            Job::Sweep(sweep) => &sweep.design,
            Job::Campaign(campaign) => &campaign.design,
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            Job::Design(design) => {
                w.put_u8(0);
                design.encode(w);
            }
            Job::Sweep(sweep) => {
                w.put_u8(1);
                sweep.design.encode(w);
                w.put_f64s(&sweep.cycle_lengths);
                w.put_u32(sweep.static_slot_counts.len() as u32);
                for &count in &sweep.static_slot_counts {
                    w.put_u32(count);
                }
                w.put_f64s(&sweep.slot_lengths);
            }
            Job::Campaign(campaign) => {
                w.put_u8(2);
                campaign.design.encode(w);
                w.put_u64(campaign.seed);
                w.put_f64s(&campaign.drop_probabilities);
                w.put_u64(campaign.scenarios_per_intensity);
                w.put_f64(campaign.duration);
                w.put_f64(campaign.alpha);
                w.put_u64(campaign.progress_every);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(Job::Design(DesignJob::decode(r)?)),
            1 => {
                let design = DesignJob::decode(r)?;
                let cycle_lengths = r.f64s()?;
                let count = r.len(4)?;
                let static_slot_counts =
                    (0..count).map(|_| r.u32()).collect::<WireResult<Vec<_>>>()?;
                let slot_lengths = r.f64s()?;
                Ok(Job::Sweep(SweepJob { design, cycle_lengths, static_slot_counts, slot_lengths }))
            }
            2 => Ok(Job::Campaign(CampaignJob {
                design: DesignJob::decode(r)?,
                seed: r.u64()?,
                drop_probabilities: r.f64s()?,
                scenarios_per_intensity: r.u64()?,
                duration: r.f64()?,
                alpha: r.f64()?,
                progress_every: r.u64()?,
            })),
            _ => Err(WireError::Invalid { what: "job tag" }),
        }
    }

    /// Content key of the whole job (kind + every parameter).
    pub fn content_key(&self) -> u64 {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        content_hash(&w.into_bytes())
    }
}

impl Request {
    /// Encodes the request payload (frame it with [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.id);
        w.put_u32(self.deadline_ms);
        w.put_u64(self.node_budget);
        w.put_bool(self.require_certified);
        self.job.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; trailing bytes are rejected.
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(payload);
        let request = Request {
            id: r.u64()?,
            deadline_ms: r.u32()?,
            node_budget: r.u64()?,
            require_certified: r.bool()?,
            job: Job::decode(&mut r)?,
        };
        r.finish()?;
        Ok(request)
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Structured error categories a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request frame or payload was malformed.
    Protocol,
    /// The request decoded but names an invalid problem.
    InvalidRequest,
    /// The design/sweep/campaign pipeline reported a domain failure.
    DesignFailed,
    /// The request's deadline expired before a result existed.
    DeadlineExceeded,
    /// The worker executing the job panicked; the server isolated it.
    WorkerPanic,
    /// The server is shutting down.
    Shutdown,
    /// An internal invariant failed (bug shield; never expected).
    Internal,
}

impl ErrorKind {
    fn tag(self) -> u8 {
        match self {
            ErrorKind::Protocol => 0,
            ErrorKind::InvalidRequest => 1,
            ErrorKind::DesignFailed => 2,
            ErrorKind::DeadlineExceeded => 3,
            ErrorKind::WorkerPanic => 4,
            ErrorKind::Shutdown => 5,
            ErrorKind::Internal => 6,
        }
    }

    fn from_tag(tag: u8) -> WireResult<Self> {
        Ok(match tag {
            0 => ErrorKind::Protocol,
            1 => ErrorKind::InvalidRequest,
            2 => ErrorKind::DesignFailed,
            3 => ErrorKind::DeadlineExceeded,
            4 => ErrorKind::WorkerPanic,
            5 => ErrorKind::Shutdown,
            6 => ErrorKind::Internal,
            _ => return Err(WireError::Invalid { what: "error-kind tag" }),
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::InvalidRequest => "invalid-request",
            ErrorKind::DesignFailed => "design-failed",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::WorkerPanic => "worker-panic",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// The design answer: slot map + timing table, with provenance flags.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignResult {
    /// Whether the slot map is the *proven* minimum (`false` after a budget
    /// or deadline cut — the greedy incumbent was served instead).
    pub certified_optimal: bool,
    /// Whether the artifact came out of the server's LRU cache.
    pub from_cache: bool,
    /// The slot map: application indices per TT slot.
    pub slots: Vec<Vec<u32>>,
    /// The fleet's Table-I rows, bit-exact.
    pub table: Vec<AppTimingParams>,
}

/// One candidate bus geometry of a sweep answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Candidate cycle length.
    pub cycle_length: f64,
    /// Candidate static-segment size.
    pub static_slot_count: u32,
    /// Candidate static slot length Ψ.
    pub static_slot_length: f64,
    /// Whether any feasible slot map exists under this geometry.
    pub feasible: bool,
    /// Minimum slot count when feasible (0 otherwise).
    pub slot_count: u32,
    /// Whether the per-candidate search ran to exhaustion.
    pub certified_optimal: bool,
}

/// The sweep answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Whether the design artifact came out of the cache.
    pub from_cache: bool,
    /// `false` when the deadline cut the candidate loop; `rows` then holds
    /// the completed prefix (partial answer beats no answer).
    pub complete: bool,
    /// Per-candidate verdicts, in sweep order.
    pub rows: Vec<SweepRow>,
}

/// One scenario family of a campaign answer (the Clopper–Pearson readout).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyReadout {
    /// Family label.
    pub label: String,
    /// Scenarios observed.
    pub trials: u64,
    /// Scenarios in which every application met its deadline.
    pub successes: u64,
    /// Point estimate of P(settle ≤ deadline).
    pub estimate: f64,
    /// Lower confidence bound.
    pub lower: f64,
    /// Upper confidence bound.
    pub upper: f64,
}

/// The campaign answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Whether the design artifact came out of the cache.
    pub from_cache: bool,
    /// Scenarios aggregated.
    pub total: u64,
    /// Per-family statistical readout.
    pub families: Vec<FamilyReadout>,
}

/// An online snapshot of one scenario family mid-campaign: the Welford
/// moments, P² quantile sketches and Clopper–Pearson interval the
/// aggregator maintains anyway, captured at a chunk boundary. Quantile
/// estimates are `None` until the sketch has observations.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyProgress {
    /// Family label.
    pub label: String,
    /// Scenarios aggregated so far.
    pub scenarios: u64,
    /// Scenarios in which every application settled within the horizon.
    pub settled: u64,
    /// Scenarios in which every application met its deadline.
    pub deadlines_met: u64,
    /// Running mean of the fleet settling time (settled scenarios only).
    pub settling_mean: f64,
    /// P² estimate of the median settling time.
    pub settling_p50: Option<f64>,
    /// P² estimate of the 95th-percentile settling time.
    pub settling_p95: Option<f64>,
    /// Running mean of the peak plant-state deviation.
    pub peak_mean: f64,
    /// P² estimate of the 95th-percentile peak deviation.
    pub peak_p95: Option<f64>,
    /// Running mean of the TT (static-slot) utilisation share.
    pub tt_share_mean: f64,
    /// Point estimate of P(settle ≤ deadline) so far.
    pub estimate: f64,
    /// Clopper–Pearson lower confidence bound so far.
    pub lower: f64,
    /// Clopper–Pearson upper confidence bound so far.
    pub upper: f64,
}

/// A non-terminal streaming frame: the campaign's partial aggregates after
/// `total` scenarios. A client watching the stream can stop the sweep early
/// the moment the confidence interval resolves its question — the
/// statistical-model-checking usage pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignProgress {
    /// Scenarios aggregated so far (strictly monotone across frames).
    pub total: u64,
    /// Per-family online snapshots, in family order.
    pub families: Vec<FamilyProgress>,
}

/// The terminal verdict of one request.
///
/// All variants except [`Outcome::Progress`] are *terminal*: a request is
/// answered by zero or more `Progress` frames (streaming campaigns only)
/// followed by exactly one terminal frame carrying the same request id.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A design answer.
    Design(DesignResult),
    /// A sweep answer.
    Sweep(SweepResult),
    /// A campaign answer.
    Campaign(CampaignResult),
    /// Load shed: the bounded queue was full; retry later.
    Busy,
    /// A structured failure.
    Error {
        /// Error category.
        kind: ErrorKind,
        /// Human-readable description.
        message: String,
    },
    /// A non-terminal partial-campaign snapshot (streaming only).
    Progress(CampaignProgress),
}

impl Outcome {
    /// Whether this outcome ends its request's frame sequence.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Outcome::Progress(_))
    }
}

/// One design-service response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this responds to.
    pub id: u64,
    /// The terminal verdict.
    pub outcome: Outcome,
}

fn encode_opt_f64(value: Option<f64>, w: &mut WireWriter) {
    match value {
        None => w.put_u8(0),
        Some(value) => {
            w.put_u8(1);
            w.put_f64(value);
        }
    }
}

fn decode_opt_f64(r: &mut WireReader<'_>) -> WireResult<Option<f64>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.f64()?)),
        _ => Err(WireError::Invalid { what: "optional-f64 tag" }),
    }
}

fn encode_timing_row(row: &AppTimingParams, w: &mut WireWriter) {
    w.put_str(&row.name);
    w.put_f64(row.inter_arrival);
    w.put_f64(row.deadline);
    w.put_f64(row.xi_tt);
    w.put_f64(row.xi_et);
    w.put_f64(row.xi_m);
    w.put_f64(row.k_p);
    w.put_f64(row.xi_prime_m);
}

fn decode_timing_row(r: &mut WireReader<'_>) -> WireResult<AppTimingParams> {
    // Direct struct literal (all fields are public): re-validating through
    // `AppTimingParams::new` could round or reject values the designer
    // legitimately produced, and the response must be bit-exact.
    Ok(AppTimingParams {
        name: r.str()?,
        inter_arrival: r.f64()?,
        deadline: r.f64()?,
        xi_tt: r.f64()?,
        xi_et: r.f64()?,
        xi_m: r.f64()?,
        k_p: r.f64()?,
        xi_prime_m: r.f64()?,
    })
}

impl Response {
    /// Encodes the response payload (frame it with [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.id);
        match &self.outcome {
            Outcome::Design(design) => {
                w.put_u8(0);
                w.put_bool(design.certified_optimal);
                w.put_bool(design.from_cache);
                w.put_u32(design.slots.len() as u32);
                for slot in &design.slots {
                    w.put_u32(slot.len() as u32);
                    for &app in slot {
                        w.put_u32(app);
                    }
                }
                w.put_u32(design.table.len() as u32);
                for row in &design.table {
                    encode_timing_row(row, &mut w);
                }
            }
            Outcome::Sweep(sweep) => {
                w.put_u8(1);
                w.put_bool(sweep.from_cache);
                w.put_bool(sweep.complete);
                w.put_u32(sweep.rows.len() as u32);
                for row in &sweep.rows {
                    w.put_f64(row.cycle_length);
                    w.put_u32(row.static_slot_count);
                    w.put_f64(row.static_slot_length);
                    w.put_bool(row.feasible);
                    w.put_u32(row.slot_count);
                    w.put_bool(row.certified_optimal);
                }
            }
            Outcome::Campaign(campaign) => {
                w.put_u8(2);
                w.put_bool(campaign.from_cache);
                w.put_u64(campaign.total);
                w.put_u32(campaign.families.len() as u32);
                for family in &campaign.families {
                    w.put_str(&family.label);
                    w.put_u64(family.trials);
                    w.put_u64(family.successes);
                    w.put_f64(family.estimate);
                    w.put_f64(family.lower);
                    w.put_f64(family.upper);
                }
            }
            Outcome::Busy => w.put_u8(3),
            Outcome::Error { kind, message } => {
                w.put_u8(4);
                w.put_u8(kind.tag());
                w.put_str(message);
            }
            Outcome::Progress(progress) => {
                w.put_u8(5);
                w.put_u64(progress.total);
                w.put_u32(progress.families.len() as u32);
                for family in &progress.families {
                    w.put_str(&family.label);
                    w.put_u64(family.scenarios);
                    w.put_u64(family.settled);
                    w.put_u64(family.deadlines_met);
                    w.put_f64(family.settling_mean);
                    encode_opt_f64(family.settling_p50, &mut w);
                    encode_opt_f64(family.settling_p95, &mut w);
                    w.put_f64(family.peak_mean);
                    encode_opt_f64(family.peak_p95, &mut w);
                    w.put_f64(family.tt_share_mean);
                    w.put_f64(family.estimate);
                    w.put_f64(family.lower);
                    w.put_f64(family.upper);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; trailing bytes are rejected.
    pub fn decode(payload: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(payload);
        let id = r.u64()?;
        let outcome = match r.u8()? {
            0 => {
                let certified_optimal = r.bool()?;
                let from_cache = r.bool()?;
                let slot_count = r.len(4)?;
                let mut slots = Vec::with_capacity(slot_count);
                for _ in 0..slot_count {
                    let members = r.len(4)?;
                    slots.push((0..members).map(|_| r.u32()).collect::<WireResult<Vec<_>>>()?);
                }
                let rows = r.len(8)?;
                let table =
                    (0..rows).map(|_| decode_timing_row(&mut r)).collect::<WireResult<Vec<_>>>()?;
                Outcome::Design(DesignResult { certified_optimal, from_cache, slots, table })
            }
            1 => {
                let from_cache = r.bool()?;
                let complete = r.bool()?;
                let count = r.len(8)?;
                let rows = (0..count)
                    .map(|_| {
                        Ok(SweepRow {
                            cycle_length: r.f64()?,
                            static_slot_count: r.u32()?,
                            static_slot_length: r.f64()?,
                            feasible: r.bool()?,
                            slot_count: r.u32()?,
                            certified_optimal: r.bool()?,
                        })
                    })
                    .collect::<WireResult<Vec<_>>>()?;
                Outcome::Sweep(SweepResult { from_cache, complete, rows })
            }
            2 => {
                let from_cache = r.bool()?;
                let total = r.u64()?;
                let count = r.len(8)?;
                let families = (0..count)
                    .map(|_| {
                        Ok(FamilyReadout {
                            label: r.str()?,
                            trials: r.u64()?,
                            successes: r.u64()?,
                            estimate: r.f64()?,
                            lower: r.f64()?,
                            upper: r.f64()?,
                        })
                    })
                    .collect::<WireResult<Vec<_>>>()?;
                Outcome::Campaign(CampaignResult { from_cache, total, families })
            }
            3 => Outcome::Busy,
            4 => Outcome::Error { kind: ErrorKind::from_tag(r.u8()?)?, message: r.str()? },
            5 => {
                let total = r.u64()?;
                let count = r.len(8)?;
                let families = (0..count)
                    .map(|_| {
                        Ok(FamilyProgress {
                            label: r.str()?,
                            scenarios: r.u64()?,
                            settled: r.u64()?,
                            deadlines_met: r.u64()?,
                            settling_mean: r.f64()?,
                            settling_p50: decode_opt_f64(&mut r)?,
                            settling_p95: decode_opt_f64(&mut r)?,
                            peak_mean: r.f64()?,
                            peak_p95: decode_opt_f64(&mut r)?,
                            tt_share_mean: r.f64()?,
                            estimate: r.f64()?,
                            lower: r.f64()?,
                            upper: r.f64()?,
                        })
                    })
                    .collect::<WireResult<Vec<_>>>()?;
                Outcome::Progress(CampaignProgress { total, families })
            }
            _ => return Err(WireError::Invalid { what: "outcome tag" }),
        };
        r.finish()?;
        Ok(Response { id, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_design_job() -> DesignJob {
        let spec = cps_core::case_study::derived_fleet_specs().remove(0);
        DesignJob {
            specs: vec![WireAppSpec::from_spec(&spec)],
            alloc: WireAllocatorConfig::from_config(&AllocatorConfig::default()),
            bus: WireBusConfig::from_config(&FlexRayConfig::paper_case_study()),
        }
    }

    #[test]
    fn request_round_trips_bit_exactly() {
        let request = Request {
            id: 42,
            deadline_ms: 1500,
            node_budget: 9,
            require_certified: true,
            job: Job::Design(sample_design_job()),
        };
        let decoded = Request::decode(&request.encode()).unwrap();
        assert_eq!(decoded, request);
    }

    #[test]
    fn sweep_and_campaign_jobs_round_trip() {
        let sweep = Request {
            id: 1,
            deadline_ms: 0,
            node_budget: 0,
            require_certified: false,
            job: Job::Sweep(SweepJob {
                design: sample_design_job(),
                cycle_lengths: vec![0.005, 0.01],
                static_slot_counts: vec![4, 10],
                slot_lengths: vec![],
            }),
        };
        assert_eq!(Request::decode(&sweep.encode()).unwrap(), sweep);
        let campaign = Request {
            id: 2,
            deadline_ms: 250,
            node_budget: 0,
            require_certified: false,
            job: Job::Campaign(CampaignJob {
                design: sample_design_job(),
                seed: 7,
                drop_probabilities: vec![0.0, 0.2],
                scenarios_per_intensity: 3,
                duration: 1.0,
                alpha: 0.05,
                progress_every: 16,
            }),
        };
        assert_eq!(Request::decode(&campaign.encode()).unwrap(), campaign);
    }

    #[test]
    fn responses_round_trip() {
        let samples = vec![
            Response {
                id: 3,
                outcome: Outcome::Design(DesignResult {
                    certified_optimal: true,
                    from_cache: false,
                    slots: vec![vec![0, 2], vec![1]],
                    table: vec![AppTimingParams::new("C1", 10.0, 2.0, 0.39, 3.97, 0.64, 0.69)
                        .unwrap()],
                }),
            },
            Response {
                id: 4,
                outcome: Outcome::Sweep(SweepResult {
                    from_cache: true,
                    complete: false,
                    rows: vec![SweepRow {
                        cycle_length: 0.005,
                        static_slot_count: 10,
                        static_slot_length: 2.5e-5,
                        feasible: true,
                        slot_count: 3,
                        certified_optimal: true,
                    }],
                }),
            },
            Response {
                id: 5,
                outcome: Outcome::Campaign(CampaignResult {
                    from_cache: false,
                    total: 8,
                    families: vec![FamilyReadout {
                        label: "drop p=0.000".to_string(),
                        trials: 8,
                        successes: 8,
                        estimate: 1.0,
                        lower: 0.63,
                        upper: 1.0,
                    }],
                }),
            },
            Response { id: 6, outcome: Outcome::Busy },
            Response {
                id: 7,
                outcome: Outcome::Error {
                    kind: ErrorKind::DeadlineExceeded,
                    message: "deadline expired".to_string(),
                },
            },
            Response {
                id: 8,
                outcome: Outcome::Progress(CampaignProgress {
                    total: 24,
                    families: vec![FamilyProgress {
                        label: "drop p=0.200".to_string(),
                        scenarios: 12,
                        settled: 11,
                        deadlines_met: 10,
                        settling_mean: 3.25,
                        settling_p50: Some(3.0),
                        settling_p95: None,
                        peak_mean: 0.8,
                        peak_p95: Some(1.1),
                        tt_share_mean: 0.4,
                        estimate: 10.0 / 12.0,
                        lower: 0.51,
                        upper: 0.97,
                    }],
                }),
            },
        ];
        for response in samples {
            assert_eq!(Response::decode(&response.encode()).unwrap(), response);
        }
    }

    #[test]
    fn content_keys_are_stable_and_discriminating() {
        let job = Job::Design(sample_design_job());
        assert_eq!(job.content_key(), job.content_key());
        let mut other = sample_design_job();
        other.alloc.max_slots += 1;
        assert_ne!(job.content_key(), Job::Design(other).content_key());
        // The request envelope (id, deadline) does not enter the key.
        assert_eq!(
            Job::Design(sample_design_job()).content_key(),
            Job::Design(sample_design_job()).content_key()
        );
    }

    #[test]
    fn malformed_payloads_fail_cleanly() {
        let request = Request {
            id: 1,
            deadline_ms: 0,
            node_budget: 0,
            require_certified: false,
            job: Job::Design(sample_design_job()),
        };
        let bytes = request.encode();
        // Every truncation point decodes to a clean error.
        for cut in 0..bytes.len().min(64) {
            assert!(Request::decode(&bytes[..cut]).is_err());
        }
        assert!(Request::decode(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage is rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Request::decode(&extended).is_err());
        // A corrupt collection length cannot force a huge allocation.
        let mut corrupt = bytes;
        corrupt[21] = 0xff; // inside the spec-count field
        corrupt[22] = 0xff;
        assert!(Request::decode(&corrupt).is_err());
    }

    #[test]
    fn frames_enforce_the_size_cap() {
        let mut out = Vec::new();
        write_frame(&mut out, b"hello").unwrap();
        let mut cursor = io::Cursor::new(out);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut cursor).unwrap().is_none());

        // Announced length above the cap: rejected before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut cursor = io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut cursor).is_err());

        // EOF mid-payload: UnexpectedEof, not a hang.
        let mut truncated = 100u32.to_le_bytes().to_vec();
        truncated.extend_from_slice(&[1, 2, 3]);
        let mut cursor = io::Cursor::new(truncated);
        assert!(read_frame(&mut cursor).is_err());

        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
