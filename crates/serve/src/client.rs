//! The retrying design-service client.
//!
//! Connects over either transport ([`Endpoint::Unix`] or [`Endpoint::Tcp`])
//! and reuses connections across requests: healthy connections return to a
//! small idle pool after each exchange, while any transport or protocol
//! failure *poisons* its connection — it is dropped on the spot and the
//! retry reconnects fresh, so a dropped or corrupted exchange can never
//! contaminate the next one. Request ids key each exchange: a response
//! answering the wrong id is treated exactly like a corrupted frame.
//! Backoff between attempts is exponential with deterministic,
//! [`SimRng`]-seeded jitter. Retry classification:
//!
//! - **Retryable** — transport failures (connect/read/write errors, EOF
//!   mid-response), malformed or mis-addressed responses (a chaos-corrupted
//!   frame), [`Outcome::Busy`] (the server shed load; backing off is the
//!   point) and [`ErrorKind::WorkerPanic`] (the fault was isolated; the
//!   server is still healthy).
//! - **Terminal** — every other decoded outcome. `DeadlineExceeded` in
//!   particular is *not* retried: the deadline belongs to the request, and
//!   retrying cannot un-expire it.
//!
//! Campaign jobs can also be *streamed* ([`DesignClient::stream_campaign`]):
//! the returned [`CampaignStream`] yields each non-terminal
//! [`Outcome::Progress`] frame as it arrives and ends with the terminal
//! outcome. Dropping the stream before the terminal frame closes its
//! dedicated connection, which the server detects at the next progress
//! write and answers by firing the job's cancel token — early cancellation
//! without a control channel.

use crate::error::ServeError;
use crate::protocol::{read_frame, write_frame, ErrorKind, Job, Outcome, Request, Response};
use crate::protocol::CampaignJob;
use cps_flexray::SimRng;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where the design service lives.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP socket address.
    Tcp(SocketAddr),
}

impl Endpoint {
    fn connect(&self) -> io::Result<ClientConn> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(ClientConn::Unix),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                // Small latency-bound frames; Nagle only hurts.
                let _ = stream.set_nodelay(true);
                Ok(ClientConn::Tcp(stream))
            }
        }
    }
}

/// One client connection over either transport.
enum ClientConn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientConn::Unix(stream) => stream.read(buf),
            ClientConn::Tcp(stream) => stream.read(buf),
        }
    }
}

impl Write for ClientConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientConn::Unix(stream) => stream.write(buf),
            ClientConn::Tcp(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientConn::Unix(stream) => stream.flush(),
            ClientConn::Tcp(stream) => stream.flush(),
        }
    }
}

/// Retry behaviour of a [`DesignClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (including the first); minimum 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed of the deterministic backoff jitter (derived per request id, so
    /// concurrent clients with different seeds never sleep in lockstep).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

/// Per-request knobs (everything except the job itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Deadline in milliseconds; 0 = none.
    pub deadline_ms: u32,
    /// Exact-search node budget; 0 = unbounded.
    pub node_budget: u64,
    /// Treat degraded (uncertified) cached artifacts as misses.
    pub require_certified: bool,
}

/// A client of the design service.
pub struct DesignClient {
    endpoint: Endpoint,
    policy: RetryPolicy,
    next_id: u64,
    /// Idle healthy connections, most recently used last.
    pool: Vec<ClientConn>,
    /// Idle-pool ceiling; excess healthy connections are simply closed.
    max_idle: usize,
    /// `false` disables reuse entirely (one fresh connection per attempt).
    reuse: bool,
}

impl DesignClient {
    /// A Unix-socket client with the default [`RetryPolicy`] (alias of
    /// [`DesignClient::unix`]).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self::unix(path)
    }

    /// A client for the server at the Unix socket `path`.
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        Self::connect_to(Endpoint::Unix(path.into()))
    }

    /// A client for the server at the TCP address `addr`.
    pub fn tcp(addr: SocketAddr) -> Self {
        Self::connect_to(Endpoint::Tcp(addr))
    }

    /// A client for an explicit [`Endpoint`].
    pub fn connect_to(endpoint: Endpoint) -> Self {
        DesignClient {
            endpoint,
            policy: RetryPolicy::default(),
            next_id: 1,
            pool: Vec::new(),
            max_idle: 2,
            reuse: true,
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables connection reuse (`true` by default). With reuse
    /// off every attempt opens a fresh connection — the pre-pool behaviour,
    /// kept as the comparison rung for the reuse benchmark.
    #[must_use]
    pub fn with_reuse(mut self, reuse: bool) -> Self {
        self.reuse = reuse;
        if !reuse {
            self.pool.clear();
        }
        self
    }

    /// Caps the idle connection pool (default 2; 0 behaves like fresh
    /// connections while still attempting reuse within a retry loop).
    #[must_use]
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self.pool.truncate(max_idle);
        self
    }

    /// Idle pooled connections (diagnostic).
    pub fn idle_connections(&self) -> usize {
        self.pool.len()
    }

    /// Sends `job` and returns its terminal outcome, retrying transient
    /// failures per the policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::RetriesExhausted`] when every attempt failed
    /// transiently; never an error for a decoded terminal outcome (those
    /// are returned as [`Outcome`] values, including structured failures).
    pub fn request(&mut self, job: Job, options: RequestOptions) -> Result<Outcome, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            deadline_ms: options.deadline_ms,
            node_budget: options.node_budget,
            require_certified: options.require_certified,
            job,
        };
        let mut rng = SimRng::seeded(SimRng::derive(self.policy.jitter_seed, id));
        let attempts = self.policy.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt - 1, &mut rng));
            }
            match self.attempt(&request) {
                Ok(outcome) if Self::retryable_outcome(&outcome) => {
                    last = match &outcome {
                        Outcome::Busy => "server busy (load shed)".to_string(),
                        Outcome::Error { message, .. } => message.clone(),
                        _ => unreachable!("only Busy/WorkerPanic are retryable"),
                    };
                }
                Ok(outcome) => return Ok(outcome),
                Err(error) => last = error.to_string(),
            }
        }
        Err(ServeError::RetriesExhausted { attempts, last })
    }

    /// Sends a campaign job and returns the live result stream. The job's
    /// `progress_every` controls the emission cadence (0 = terminal frame
    /// only). The stream runs on a dedicated connection that is never
    /// pooled; dropping it before the terminal frame cancels the campaign
    /// server-side. No retries: a stream is a single attempt by
    /// construction (replaying half a stream would double-count progress).
    ///
    /// # Errors
    ///
    /// Connecting or sending the request failed.
    pub fn stream_campaign(
        &mut self,
        job: CampaignJob,
        options: RequestOptions,
    ) -> Result<CampaignStream, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            deadline_ms: options.deadline_ms,
            node_budget: options.node_budget,
            require_certified: options.require_certified,
            job: Job::Campaign(job),
        };
        let mut conn = self.endpoint.connect()?;
        write_frame(&mut conn, &request.encode())?;
        Ok(CampaignStream { conn: Some(conn), id, done: false })
    }

    /// Exponential backoff with multiplicative jitter in `[0.5, 1.0)`.
    fn backoff(&self, exponent: u32, rng: &mut SimRng) -> Duration {
        let exact = self
            .policy
            .base_delay
            .saturating_mul(2u32.saturating_pow(exponent))
            .min(self.policy.max_delay);
        exact.mul_f64(0.5 + 0.5 * rng.next_unit())
    }

    fn retryable_outcome(outcome: &Outcome) -> bool {
        matches!(
            outcome,
            Outcome::Busy | Outcome::Error { kind: ErrorKind::WorkerPanic, .. }
        )
    }

    /// One request/response exchange, reusing a pooled connection when one
    /// is idle. Success returns the connection to the pool; *any* failure
    /// poisons it (the connection is dropped, never reused).
    fn attempt(&mut self, request: &Request) -> Result<Outcome, ServeError> {
        let mut conn = match self.pool.pop() {
            Some(conn) => conn,
            None => self.endpoint.connect()?,
        };
        let result = Self::exchange(&mut conn, request);
        if result.is_ok() && self.reuse && self.pool.len() < self.max_idle {
            self.pool.push(conn);
        }
        result
    }

    /// Writes the request and reads frames until the terminal outcome
    /// (non-terminal progress frames for this id are skipped — `request`
    /// is the blocking API; use [`DesignClient::stream_campaign`] to see
    /// them).
    fn exchange(conn: &mut ClientConn, request: &Request) -> Result<Outcome, ServeError> {
        write_frame(conn, &request.encode())?;
        loop {
            let outcome = read_response(conn, request.id)?;
            if outcome.is_terminal() {
                return Ok(outcome);
            }
        }
    }
}

/// Reads one response frame and validates its id against `expected`.
fn read_response(conn: &mut ClientConn, expected: u64) -> Result<Outcome, ServeError> {
    let payload = read_frame(conn)?.ok_or_else(|| {
        ServeError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without responding",
        ))
    })?;
    let response = Response::decode(&payload)?;
    // Protocol errors are reported with id 0 (the server could not decode
    // the id); everything else must echo ours.
    let protocol_error =
        matches!(&response.outcome, Outcome::Error { kind: ErrorKind::Protocol, .. });
    if response.id != expected && !(protocol_error && response.id == 0) {
        return Err(ServeError::IdMismatch { sent: expected, received: response.id });
    }
    Ok(response.outcome)
}

/// A live campaign result stream: zero or more [`Outcome::Progress`] items
/// followed by exactly one terminal outcome, after which the iterator ends.
///
/// Dropping the stream before its terminal item closes the connection; the
/// server notices at its next progress write and fires the campaign's
/// cancel token, so an abandoned stream stops costing compute within one
/// emission interval.
pub struct CampaignStream {
    conn: Option<ClientConn>,
    id: u64,
    done: bool,
}

impl CampaignStream {
    /// The request id the stream answers.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Drains the stream, returning the terminal outcome and discarding
    /// progress frames.
    ///
    /// # Errors
    ///
    /// The first transport or protocol error, or an unexpected end of
    /// stream.
    pub fn wait_terminal(mut self) -> Result<Outcome, ServeError> {
        for item in &mut self {
            let outcome = item?;
            if outcome.is_terminal() {
                return Ok(outcome);
            }
        }
        Err(ServeError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended without a terminal frame",
        )))
    }
}

impl Iterator for CampaignStream {
    type Item = Result<Outcome, ServeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let conn = self.conn.as_mut()?;
        match read_response(conn, self.id) {
            Ok(outcome) => {
                if outcome.is_terminal() {
                    self.done = true;
                    self.conn = None;
                }
                Some(Ok(outcome))
            }
            Err(error) => {
                self.done = true;
                self.conn = None;
                Some(Err(error))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps_with_jitter_in_range() {
        let client = DesignClient::new("/tmp/unused.sock").with_retry_policy(RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            jitter_seed: 9,
        });
        let mut rng = SimRng::seeded(1);
        for exponent in 0..8 {
            let delay = client.backoff(exponent, &mut rng);
            let exact = Duration::from_millis(10)
                .saturating_mul(2u32.saturating_pow(exponent))
                .min(Duration::from_millis(40));
            assert!(delay >= exact.mul_f64(0.5), "jitter floor at half the exact delay");
            assert!(delay <= exact, "jitter never exceeds the exact delay");
        }
    }

    #[test]
    fn retry_classification() {
        assert!(DesignClient::retryable_outcome(&Outcome::Busy));
        assert!(DesignClient::retryable_outcome(&Outcome::Error {
            kind: ErrorKind::WorkerPanic,
            message: String::new(),
        }));
        assert!(!DesignClient::retryable_outcome(&Outcome::Error {
            kind: ErrorKind::DeadlineExceeded,
            message: String::new(),
        }));
        assert!(!DesignClient::retryable_outcome(&Outcome::Error {
            kind: ErrorKind::DesignFailed,
            message: String::new(),
        }));
    }

    #[test]
    fn connecting_to_nothing_exhausts_retries() {
        let mut client =
            DesignClient::new("/tmp/cps-serve-no-such-socket.sock").with_retry_policy(
                RetryPolicy {
                    max_attempts: 2,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(2),
                    jitter_seed: 0,
                },
            );
        let job = Job::Campaign(crate::protocol::CampaignJob {
            design: crate::protocol::DesignJob {
                specs: vec![],
                alloc: crate::protocol::WireAllocatorConfig::from_config(
                    &cps_sched::AllocatorConfig::default(),
                ),
                bus: crate::protocol::WireBusConfig::from_config(
                    &cps_flexray::FlexRayConfig::paper_case_study(),
                ),
            },
            seed: 1,
            drop_probabilities: vec![],
            scenarios_per_intensity: 0,
            duration: 0.1,
            alpha: 0.05,
            progress_every: 0,
        });
        match client.request(job, RequestOptions::default()) {
            Err(ServeError::RetriesExhausted { attempts: 2, .. }) => {}
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        assert_eq!(client.idle_connections(), 0, "failed attempts never pool");
    }

    #[test]
    fn disabling_reuse_clears_the_pool() {
        let client = DesignClient::tcp("127.0.0.1:1".parse().unwrap())
            .with_max_idle(8)
            .with_reuse(false);
        assert_eq!(client.idle_connections(), 0);
        assert!(!client.reuse);
    }
}
