//! The retrying design-service client.
//!
//! One connection per attempt (a dropped or corrupted connection can never
//! contaminate the next try), with exponential backoff and deterministic,
//! [`SimRng`]-seeded jitter between attempts. Retry classification:
//!
//! - **Retryable** — transport failures (connect/read/write errors, EOF
//!   mid-response), malformed or mis-addressed responses (a chaos-corrupted
//!   frame), [`Outcome::Busy`] (the server shed load; backing off is the
//!   point) and [`ErrorKind::WorkerPanic`] (the fault was isolated; the
//!   server is still healthy).
//! - **Terminal** — every other decoded outcome. `DeadlineExceeded` in
//!   particular is *not* retried: the deadline belongs to the request, and
//!   retrying cannot un-expire it.

use crate::error::ServeError;
use crate::protocol::{read_frame, write_frame, ErrorKind, Job, Outcome, Request, Response};
use cps_flexray::SimRng;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Retry behaviour of a [`DesignClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (including the first); minimum 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed of the deterministic backoff jitter (derived per request id, so
    /// concurrent clients with different seeds never sleep in lockstep).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

/// Per-request knobs (everything except the job itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestOptions {
    /// Deadline in milliseconds; 0 = none.
    pub deadline_ms: u32,
    /// Exact-search node budget; 0 = unbounded.
    pub node_budget: u64,
    /// Treat degraded (uncertified) cached artifacts as misses.
    pub require_certified: bool,
}

/// A client of the design service.
pub struct DesignClient {
    path: PathBuf,
    policy: RetryPolicy,
    next_id: u64,
}

impl DesignClient {
    /// A client for the server at `path` with the default [`RetryPolicy`].
    pub fn new(path: impl Into<PathBuf>) -> Self {
        DesignClient { path: path.into(), policy: RetryPolicy::default(), next_id: 1 }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sends `job` and returns its terminal outcome, retrying transient
    /// failures per the policy.
    ///
    /// # Errors
    ///
    /// [`ServeError::RetriesExhausted`] when every attempt failed
    /// transiently; never an error for a decoded terminal outcome (those
    /// are returned as [`Outcome`] values, including structured failures).
    pub fn request(&mut self, job: Job, options: RequestOptions) -> Result<Outcome, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            deadline_ms: options.deadline_ms,
            node_budget: options.node_budget,
            require_certified: options.require_certified,
            job,
        };
        let mut rng = SimRng::seeded(SimRng::derive(self.policy.jitter_seed, id));
        let attempts = self.policy.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff(attempt - 1, &mut rng));
            }
            match self.attempt(&request) {
                Ok(outcome) if Self::retryable_outcome(&outcome) => {
                    last = match &outcome {
                        Outcome::Busy => "server busy (load shed)".to_string(),
                        Outcome::Error { message, .. } => message.clone(),
                        _ => unreachable!("only Busy/WorkerPanic are retryable"),
                    };
                }
                Ok(outcome) => return Ok(outcome),
                Err(error) => last = error.to_string(),
            }
        }
        Err(ServeError::RetriesExhausted { attempts, last })
    }

    /// Exponential backoff with multiplicative jitter in `[0.5, 1.0)`.
    fn backoff(&self, exponent: u32, rng: &mut SimRng) -> Duration {
        let exact = self
            .policy
            .base_delay
            .saturating_mul(2u32.saturating_pow(exponent))
            .min(self.policy.max_delay);
        exact.mul_f64(0.5 + 0.5 * rng.next_unit())
    }

    fn retryable_outcome(outcome: &Outcome) -> bool {
        matches!(
            outcome,
            Outcome::Busy | Outcome::Error { kind: ErrorKind::WorkerPanic, .. }
        )
    }

    /// One connect-send-receive exchange on a fresh connection.
    fn attempt(&self, request: &Request) -> Result<Outcome, ServeError> {
        let mut stream = UnixStream::connect(&self.path)?;
        write_frame(&mut stream, &request.encode())?;
        let payload = read_frame(&mut stream)?.ok_or_else(|| {
            ServeError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without responding",
            ))
        })?;
        let response = Response::decode(&payload)?;
        // Protocol errors are reported with id 0 (the server could not
        // decode the id); everything else must echo ours.
        let protocol_error =
            matches!(&response.outcome, Outcome::Error { kind: ErrorKind::Protocol, .. });
        if response.id != request.id && !(protocol_error && response.id == 0) {
            return Err(ServeError::IdMismatch { sent: request.id, received: response.id });
        }
        Ok(response.outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps_with_jitter_in_range() {
        let client = DesignClient::new("/tmp/unused.sock").with_retry_policy(RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            jitter_seed: 9,
        });
        let mut rng = SimRng::seeded(1);
        for exponent in 0..8 {
            let delay = client.backoff(exponent, &mut rng);
            let exact = Duration::from_millis(10)
                .saturating_mul(2u32.saturating_pow(exponent))
                .min(Duration::from_millis(40));
            assert!(delay >= exact.mul_f64(0.5), "jitter floor at half the exact delay");
            assert!(delay <= exact, "jitter never exceeds the exact delay");
        }
    }

    #[test]
    fn retry_classification() {
        assert!(DesignClient::retryable_outcome(&Outcome::Busy));
        assert!(DesignClient::retryable_outcome(&Outcome::Error {
            kind: ErrorKind::WorkerPanic,
            message: String::new(),
        }));
        assert!(!DesignClient::retryable_outcome(&Outcome::Error {
            kind: ErrorKind::DeadlineExceeded,
            message: String::new(),
        }));
        assert!(!DesignClient::retryable_outcome(&Outcome::Error {
            kind: ErrorKind::DesignFailed,
            message: String::new(),
        }));
    }

    #[test]
    fn connecting_to_nothing_exhausts_retries() {
        let mut client =
            DesignClient::new("/tmp/cps-serve-no-such-socket.sock").with_retry_policy(
                RetryPolicy {
                    max_attempts: 2,
                    base_delay: Duration::from_millis(1),
                    max_delay: Duration::from_millis(2),
                    jitter_seed: 0,
                },
            );
        let job = Job::Campaign(crate::protocol::CampaignJob {
            design: crate::protocol::DesignJob {
                specs: vec![],
                alloc: crate::protocol::WireAllocatorConfig::from_config(
                    &cps_sched::AllocatorConfig::default(),
                ),
                bus: crate::protocol::WireBusConfig::from_config(
                    &cps_flexray::FlexRayConfig::paper_case_study(),
                ),
            },
            seed: 1,
            drop_probabilities: vec![],
            scenarios_per_intensity: 0,
            duration: 0.1,
            alpha: 0.05,
        });
        match client.request(job, RequestOptions::default()) {
            Err(ServeError::RetriesExhausted { attempts: 2, .. }) => {}
            other => panic!("expected exhausted retries, got {other:?}"),
        }
    }
}
