//! The content-addressed design-artifact cache with single-flight
//! deduplication.
//!
//! Design artifacts (a [`DesignedFleet`] plus its certification flag) are
//! keyed by the FNV-1a content hash of the *canonical job encoding*
//! ([`DesignJob::content_key`](crate::protocol::DesignJob::content_key)):
//! two requests share an artifact exactly when their design-problem bytes
//! agree. The cache is a bounded LRU; on overflow the least-recently-used
//! entry is evicted, which bounds server memory under arbitrary request
//! mixes.
//!
//! *Single flight*: when K requests for the same key arrive concurrently,
//! exactly one becomes the **leader** ([`CacheOutcome::Lead`]) and computes;
//! the others **join** ([`CacheOutcome::Join`]) and block on a channel the
//! leader completes. A leader must *always* call [`ArtifactCache::complete`]
//! — success or failure — or joiners would hang; the server wraps leader
//! computation in `catch_unwind` and completes with an error on panic, so a
//! panicking design can neither poison the cache nor strand its joiners.
//!
//! *Degradation hygiene*: a degraded (uncertified) artifact never
//! overwrites a certified one, and a request with `require_certified`
//! treats an uncertified entry as a miss — load-induced degradation cannot
//! silently downgrade later answers.

use cps_core::DesignedFleet;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// A cached design: the immutable fleet plus how it was obtained.
#[derive(Debug)]
pub struct DesignArtifact {
    /// The designed fleet (allocation + seeded timing table).
    pub fleet: Arc<DesignedFleet>,
    /// Whether the slot map was proven minimal (`false` after a budget or
    /// deadline cut degraded the search to the greedy incumbent).
    pub certified_optimal: bool,
}

/// What a leader reports: the artifact, or a rendered failure for joiners.
pub type CacheResult = Result<Arc<DesignArtifact>, String>;

/// The verdict of a cache lookup.
pub enum CacheOutcome {
    /// The artifact is cached; use it.
    Hit(Arc<DesignArtifact>),
    /// Another request is computing this artifact right now; receive its
    /// result from the channel.
    Join(Receiver<CacheResult>),
    /// This request leads: compute the artifact, then *always* call
    /// [`ArtifactCache::complete`].
    Lead,
}

struct Entry {
    artifact: Arc<DesignArtifact>,
    last_used: u64,
}

struct CacheState {
    tick: u64,
    entries: HashMap<u64, Entry>,
    in_flight: HashMap<u64, Vec<Sender<CacheResult>>>,
}

/// Bounded LRU of design artifacts with single-flight deduplication.
pub struct ArtifactCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifacts (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                tick: 0,
                entries: HashMap::new(),
                in_flight: HashMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // A panic while holding the lock cannot corrupt the map invariants
        // (every mutation is a single insert/remove), so poisoned state is
        // safe to adopt — refusing would turn one isolated panic into a
        // permanently dead cache.
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Looks up `key`, joining or leading the computation on a miss.
    ///
    /// With `require_certified`, an uncertified cached artifact counts as a
    /// miss (the caller recomputes at full fidelity).
    pub fn lookup_or_begin(&self, key: u64, require_certified: bool) -> CacheOutcome {
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(entry) = state.entries.get_mut(&key) {
            if entry.artifact.certified_optimal || !require_certified {
                entry.last_used = tick;
                return CacheOutcome::Hit(Arc::clone(&entry.artifact));
            }
        }
        if let Some(waiters) = state.in_flight.get_mut(&key) {
            let (sender, receiver) = channel();
            waiters.push(sender);
            return CacheOutcome::Join(receiver);
        }
        state.in_flight.insert(key, Vec::new());
        CacheOutcome::Lead
    }

    /// Publishes a leader's result: caches a success (unless it would
    /// overwrite a certified artifact with an uncertified one), evicts the
    /// LRU entry on overflow, and wakes every joiner with the result.
    pub fn complete(&self, key: u64, result: CacheResult) {
        let waiters = {
            let mut state = self.lock();
            if let Ok(artifact) = &result {
                state.tick += 1;
                let tick = state.tick;
                let keep_existing = state
                    .entries
                    .get(&key)
                    .is_some_and(|e| e.artifact.certified_optimal && !artifact.certified_optimal);
                if !keep_existing {
                    state
                        .entries
                        .insert(key, Entry { artifact: Arc::clone(artifact), last_used: tick });
                }
                while state.entries.len() > self.capacity {
                    let Some((&victim, _)) =
                        state.entries.iter().min_by_key(|(_, entry)| entry.last_used)
                    else {
                        break;
                    };
                    state.entries.remove(&victim);
                }
            }
            state.in_flight.remove(&key).unwrap_or_default()
        };
        for waiter in waiters {
            // A joiner that gave up (deadline) has dropped its receiver;
            // that is its business, not an error here.
            let _ = waiter.send(result.clone());
        }
    }

    /// Cached artifact count (test/diagnostic hook).
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::case_study::derived_fleet_specs;
    use cps_core::DesignedFleet;
    use cps_flexray::FlexRayConfig;
    use cps_sched::AllocatorConfig;

    fn artifact(certified: bool) -> Arc<DesignArtifact> {
        let fleet = DesignedFleet::design(
            derived_fleet_specs(),
            &AllocatorConfig::default(),
            FlexRayConfig::paper_case_study(),
        )
        .unwrap();
        Arc::new(DesignArtifact { fleet: Arc::new(fleet), certified_optimal: certified })
    }

    #[test]
    fn leads_then_hits() {
        let cache = ArtifactCache::new(4);
        assert!(matches!(cache.lookup_or_begin(1, false), CacheOutcome::Lead));
        let built = artifact(true);
        cache.complete(1, Ok(Arc::clone(&built)));
        match cache.lookup_or_begin(1, false) {
            CacheOutcome::Hit(cached) => assert!(Arc::ptr_eq(&cached, &built)),
            _ => panic!("expected a hit after completion"),
        }
    }

    #[test]
    fn joiners_receive_the_leaders_result() {
        let cache = ArtifactCache::new(4);
        assert!(matches!(cache.lookup_or_begin(9, false), CacheOutcome::Lead));
        let CacheOutcome::Join(receiver) = cache.lookup_or_begin(9, false) else {
            panic!("second lookup must join the in-flight computation");
        };
        let built = artifact(true);
        cache.complete(9, Ok(Arc::clone(&built)));
        let joined = receiver.recv().unwrap().unwrap();
        assert!(Arc::ptr_eq(&joined, &built));
    }

    #[test]
    fn failed_leads_propagate_and_do_not_cache() {
        let cache = ArtifactCache::new(4);
        assert!(matches!(cache.lookup_or_begin(5, false), CacheOutcome::Lead));
        let CacheOutcome::Join(receiver) = cache.lookup_or_begin(5, false) else {
            panic!("expected join");
        };
        cache.complete(5, Err("design failed".to_string()));
        assert_eq!(receiver.recv().unwrap().unwrap_err(), "design failed");
        assert!(cache.is_empty());
        // The key is computable again — failure did not poison it.
        assert!(matches!(cache.lookup_or_begin(5, false), CacheOutcome::Lead));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ArtifactCache::new(2);
        for key in [1, 2] {
            assert!(matches!(cache.lookup_or_begin(key, false), CacheOutcome::Lead));
            cache.complete(key, Ok(artifact(true)));
        }
        // Touch key 1 so key 2 is the LRU victim.
        assert!(matches!(cache.lookup_or_begin(1, false), CacheOutcome::Hit(_)));
        assert!(matches!(cache.lookup_or_begin(3, false), CacheOutcome::Lead));
        cache.complete(3, Ok(artifact(true)));
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup_or_begin(1, false), CacheOutcome::Hit(_)));
        assert!(matches!(cache.lookup_or_begin(2, false), CacheOutcome::Lead));
        cache.complete(2, Ok(artifact(true)));
    }

    #[test]
    fn certified_entries_survive_uncertified_completions() {
        let cache = ArtifactCache::new(4);
        assert!(matches!(cache.lookup_or_begin(7, false), CacheOutcome::Lead));
        let certified = artifact(true);
        cache.complete(7, Ok(Arc::clone(&certified)));
        // A later degraded computation of the same key must not downgrade it.
        assert!(matches!(cache.lookup_or_begin(7, true), CacheOutcome::Hit(_)));
        assert!(matches!(cache.lookup_or_begin(8, false), CacheOutcome::Lead));
        cache.complete(8, Ok(artifact(false)));
        cache.complete(7, Ok(artifact(false)));
        match cache.lookup_or_begin(7, false) {
            CacheOutcome::Hit(cached) => assert!(cached.certified_optimal),
            _ => panic!("certified artifact must survive"),
        }
        // require_certified treats the uncertified key 8 as a miss.
        assert!(matches!(cache.lookup_or_begin(8, true), CacheOutcome::Lead));
        cache.complete(8, Ok(artifact(true)));
        assert!(matches!(cache.lookup_or_begin(8, true), CacheOutcome::Hit(_)));
    }
}
