//! The content-addressed design-artifact cache with single-flight
//! deduplication.
//!
//! Design artifacts (a [`DesignedFleet`] plus its certification flag) are
//! keyed by the FNV-1a content hash of the *canonical job encoding*
//! ([`DesignJob::content_key`](crate::protocol::DesignJob::content_key)) —
//! but the hash is only the *address*, never the identity: every entry (and
//! every in-flight computation) stores the canonical job bytes themselves,
//! and a lookup compares them on a hash hit. Two distinct jobs whose 64-bit
//! hashes collide therefore occupy separate bucket slots and can never
//! share an artifact — a collision is a miss, not a wrong answer. The cache
//! is a bounded LRU; on overflow the least-recently-used entry is evicted,
//! which bounds server memory under arbitrary request mixes.
//!
//! *Single flight*: when K requests for the same job arrive concurrently,
//! exactly one becomes the **leader** ([`CacheOutcome::Lead`]) and computes;
//! the others **join** ([`CacheOutcome::Join`]) and block on a channel the
//! leader completes. Joining too verifies the full job bytes: a request
//! whose job merely collides with an in-flight computation leads its own.
//! A leader must *always* call [`ArtifactCache::complete`] — success or
//! failure — or joiners would hang; the server wraps leader computation in
//! `catch_unwind` and completes with an error on panic, so a panicking
//! design can neither poison the cache nor strand its joiners.
//!
//! *Degradation hygiene*: a degraded (uncertified) artifact never
//! overwrites a certified one, and a request with `require_certified`
//! treats an uncertified entry as a miss — load-induced degradation cannot
//! silently downgrade later answers.

use cps_core::DesignedFleet;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// A cached design: the immutable fleet plus how it was obtained.
#[derive(Debug)]
pub struct DesignArtifact {
    /// The designed fleet (allocation + seeded timing table).
    pub fleet: Arc<DesignedFleet>,
    /// Whether the slot map was proven minimal (`false` after a budget or
    /// deadline cut degraded the search to the greedy incumbent).
    pub certified_optimal: bool,
}

/// What a leader reports: the artifact, or a rendered failure for joiners.
pub type CacheResult = Result<Arc<DesignArtifact>, String>;

/// The verdict of a cache lookup.
pub enum CacheOutcome {
    /// The artifact is cached (same hash *and* same job bytes); use it.
    Hit(Arc<DesignArtifact>),
    /// Another request is computing this exact job right now; receive its
    /// result from the channel.
    Join(Receiver<CacheResult>),
    /// This request leads: compute the artifact, then *always* call
    /// [`ArtifactCache::complete`] with the same key and job bytes.
    Lead,
}

struct Entry {
    /// Canonical job bytes — the full identity behind the 64-bit address.
    job: Vec<u8>,
    artifact: Arc<DesignArtifact>,
    last_used: u64,
}

struct InFlight {
    job: Vec<u8>,
    waiters: Vec<Sender<CacheResult>>,
}

struct CacheState {
    tick: u64,
    len: usize,
    /// Hash buckets: colliding jobs coexist instead of aliasing.
    entries: HashMap<u64, Vec<Entry>>,
    in_flight: HashMap<u64, Vec<InFlight>>,
}

/// Bounded LRU of design artifacts with single-flight deduplication and
/// full-key (canonical job bytes) verification on every hit.
pub struct ArtifactCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifacts (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                tick: 0,
                len: 0,
                entries: HashMap::new(),
                in_flight: HashMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // A panic while holding the lock cannot corrupt the map invariants
        // (every mutation is a single insert/remove), so poisoned state is
        // safe to adopt — refusing would turn one isolated panic into a
        // permanently dead cache.
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Looks up the job (addressed by `key`, identified by its canonical
    /// bytes `job`), joining or leading the computation on a miss. A hash
    /// hit whose stored bytes differ from `job` is a *miss* — never a
    /// shared artifact.
    ///
    /// With `require_certified`, an uncertified cached artifact counts as a
    /// miss (the caller recomputes at full fidelity).
    pub fn lookup_or_begin(&self, key: u64, job: &[u8], require_certified: bool) -> CacheOutcome {
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(bucket) = state.entries.get_mut(&key) {
            if let Some(entry) = bucket.iter_mut().find(|entry| entry.job == job) {
                if entry.artifact.certified_optimal || !require_certified {
                    entry.last_used = tick;
                    return CacheOutcome::Hit(Arc::clone(&entry.artifact));
                }
            }
        }
        let bucket = state.in_flight.entry(key).or_default();
        if let Some(flight) = bucket.iter_mut().find(|flight| flight.job == job) {
            let (sender, receiver) = channel();
            flight.waiters.push(sender);
            return CacheOutcome::Join(receiver);
        }
        bucket.push(InFlight { job: job.to_vec(), waiters: Vec::new() });
        CacheOutcome::Lead
    }

    /// Publishes a leader's result: caches a success (unless it would
    /// overwrite a certified artifact with an uncertified one), evicts the
    /// LRU entry on overflow, and wakes every joiner *of this exact job*
    /// with the result.
    pub fn complete(&self, key: u64, job: &[u8], result: CacheResult) {
        let waiters = {
            let mut state = self.lock();
            if let Ok(artifact) = &result {
                state.tick += 1;
                let tick = state.tick;
                let bucket = state.entries.entry(key).or_default();
                match bucket.iter_mut().find(|entry| entry.job == job) {
                    Some(existing) => {
                        // Certified artifacts are never downgraded by an
                        // uncertified recompute.
                        if !existing.artifact.certified_optimal || artifact.certified_optimal {
                            existing.artifact = Arc::clone(artifact);
                        }
                        existing.last_used = tick;
                    }
                    None => {
                        bucket.push(Entry {
                            job: job.to_vec(),
                            artifact: Arc::clone(artifact),
                            last_used: tick,
                        });
                        state.len += 1;
                    }
                }
                while state.len > self.capacity {
                    let Some((&victim_key, victim_pos)) = state
                        .entries
                        .iter()
                        .flat_map(|(k, bucket)| {
                            bucket.iter().enumerate().map(move |(pos, entry)| {
                                ((k, pos), entry.last_used)
                            })
                        })
                        .min_by_key(|&(_, last_used)| last_used)
                        .map(|((k, pos), _)| (k, pos))
                    else {
                        break;
                    };
                    let bucket = state.entries.get_mut(&victim_key).expect("victim bucket");
                    bucket.remove(victim_pos);
                    if bucket.is_empty() {
                        state.entries.remove(&victim_key);
                    }
                    state.len -= 1;
                }
            }
            let Some(bucket) = state.in_flight.get_mut(&key) else {
                return;
            };
            let Some(pos) = bucket.iter().position(|flight| flight.job == job) else {
                return;
            };
            let flight = bucket.remove(pos);
            if bucket.is_empty() {
                state.in_flight.remove(&key);
            }
            flight.waiters
        };
        for waiter in waiters {
            // A joiner that gave up (deadline) has dropped its receiver;
            // that is its business, not an error here.
            let _ = waiter.send(result.clone());
        }
    }

    /// Cached artifact count (test/diagnostic hook).
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_core::case_study::derived_fleet_specs;
    use cps_core::DesignedFleet;
    use cps_flexray::FlexRayConfig;
    use cps_sched::AllocatorConfig;

    fn artifact(certified: bool) -> Arc<DesignArtifact> {
        let fleet = DesignedFleet::design(
            derived_fleet_specs(),
            &AllocatorConfig::default(),
            FlexRayConfig::paper_case_study(),
        )
        .unwrap();
        Arc::new(DesignArtifact { fleet: Arc::new(fleet), certified_optimal: certified })
    }

    #[test]
    fn leads_then_hits() {
        let cache = ArtifactCache::new(4);
        assert!(matches!(cache.lookup_or_begin(1, b"job-1", false), CacheOutcome::Lead));
        let built = artifact(true);
        cache.complete(1, b"job-1", Ok(Arc::clone(&built)));
        match cache.lookup_or_begin(1, b"job-1", false) {
            CacheOutcome::Hit(cached) => assert!(Arc::ptr_eq(&cached, &built)),
            _ => panic!("expected a hit after completion"),
        }
    }

    #[test]
    fn colliding_hashes_never_share_an_artifact() {
        // Two *different* jobs with a fabricated identical 64-bit key: the
        // regression the bare-hash cache failed — it served job A's fleet to
        // job B. Full-key verification must treat the collision as a miss.
        let cache = ArtifactCache::new(4);
        let key = 0xDEAD_BEEF_u64;
        assert!(matches!(cache.lookup_or_begin(key, b"job-a", false), CacheOutcome::Lead));
        let artifact_a = artifact(true);
        cache.complete(key, b"job-a", Ok(Arc::clone(&artifact_a)));

        // The colliding job is a miss (Lead), not a wrong-artifact hit.
        match cache.lookup_or_begin(key, b"job-b", false) {
            CacheOutcome::Lead => {}
            CacheOutcome::Hit(_) => panic!("hash collision served the wrong artifact"),
            CacheOutcome::Join(_) => panic!("hash collision joined the wrong computation"),
        }
        let artifact_b = artifact(true);
        cache.complete(key, b"job-b", Ok(Arc::clone(&artifact_b)));
        assert_eq!(cache.len(), 2, "colliding jobs occupy separate bucket slots");

        // Each job now hits its *own* artifact.
        match cache.lookup_or_begin(key, b"job-a", false) {
            CacheOutcome::Hit(cached) => assert!(Arc::ptr_eq(&cached, &artifact_a)),
            _ => panic!("job A lost its artifact"),
        }
        match cache.lookup_or_begin(key, b"job-b", false) {
            CacheOutcome::Hit(cached) => assert!(Arc::ptr_eq(&cached, &artifact_b)),
            _ => panic!("job B lost its artifact"),
        }
    }

    #[test]
    fn colliding_hashes_never_join_anothers_flight() {
        let cache = ArtifactCache::new(4);
        let key = 42;
        assert!(matches!(cache.lookup_or_begin(key, b"job-a", false), CacheOutcome::Lead));
        // A colliding job must lead its own computation, not join A's.
        assert!(matches!(cache.lookup_or_begin(key, b"job-b", false), CacheOutcome::Lead));
        // A genuine duplicate of A still joins A's flight.
        let CacheOutcome::Join(receiver_a) = cache.lookup_or_begin(key, b"job-a", false) else {
            panic!("duplicate of the in-flight job must join");
        };
        // Completing B wakes nobody waiting on A.
        cache.complete(key, b"job-b", Err("b failed".to_string()));
        let built = artifact(true);
        cache.complete(key, b"job-a", Ok(Arc::clone(&built)));
        let joined = receiver_a.recv().unwrap().unwrap();
        assert!(Arc::ptr_eq(&joined, &built), "joiner must receive its own job's artifact");
    }

    #[test]
    fn joiners_receive_the_leaders_result() {
        let cache = ArtifactCache::new(4);
        assert!(matches!(cache.lookup_or_begin(9, b"job", false), CacheOutcome::Lead));
        let CacheOutcome::Join(receiver) = cache.lookup_or_begin(9, b"job", false) else {
            panic!("second lookup must join the in-flight computation");
        };
        let built = artifact(true);
        cache.complete(9, b"job", Ok(Arc::clone(&built)));
        let joined = receiver.recv().unwrap().unwrap();
        assert!(Arc::ptr_eq(&joined, &built));
    }

    #[test]
    fn failed_leads_propagate_and_do_not_cache() {
        let cache = ArtifactCache::new(4);
        assert!(matches!(cache.lookup_or_begin(5, b"job", false), CacheOutcome::Lead));
        let CacheOutcome::Join(receiver) = cache.lookup_or_begin(5, b"job", false) else {
            panic!("expected join");
        };
        cache.complete(5, b"job", Err("design failed".to_string()));
        assert_eq!(receiver.recv().unwrap().unwrap_err(), "design failed");
        assert!(cache.is_empty());
        // The key is computable again — failure did not poison it.
        assert!(matches!(cache.lookup_or_begin(5, b"job", false), CacheOutcome::Lead));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ArtifactCache::new(2);
        for key in [1, 2] {
            let job = [key as u8];
            assert!(matches!(cache.lookup_or_begin(key, &job, false), CacheOutcome::Lead));
            cache.complete(key, &job, Ok(artifact(true)));
        }
        // Touch key 1 so key 2 is the LRU victim.
        assert!(matches!(cache.lookup_or_begin(1, &[1], false), CacheOutcome::Hit(_)));
        assert!(matches!(cache.lookup_or_begin(3, &[3], false), CacheOutcome::Lead));
        cache.complete(3, &[3], Ok(artifact(true)));
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup_or_begin(1, &[1], false), CacheOutcome::Hit(_)));
        assert!(matches!(cache.lookup_or_begin(2, &[2], false), CacheOutcome::Lead));
        cache.complete(2, &[2], Ok(artifact(true)));
    }

    #[test]
    fn certified_entries_survive_uncertified_completions() {
        let cache = ArtifactCache::new(4);
        assert!(matches!(cache.lookup_or_begin(7, b"seven", false), CacheOutcome::Lead));
        let certified = artifact(true);
        cache.complete(7, b"seven", Ok(Arc::clone(&certified)));
        // A later degraded computation of the same key must not downgrade it.
        assert!(matches!(cache.lookup_or_begin(7, b"seven", true), CacheOutcome::Hit(_)));
        assert!(matches!(cache.lookup_or_begin(8, b"eight", false), CacheOutcome::Lead));
        cache.complete(8, b"eight", Ok(artifact(false)));
        cache.complete(7, b"seven", Ok(artifact(false)));
        match cache.lookup_or_begin(7, b"seven", false) {
            CacheOutcome::Hit(cached) => assert!(cached.certified_optimal),
            _ => panic!("certified artifact must survive"),
        }
        // require_certified treats the uncertified key 8 as a miss.
        assert!(matches!(cache.lookup_or_begin(8, b"eight", true), CacheOutcome::Lead));
        cache.complete(8, b"eight", Ok(artifact(true)));
        assert!(matches!(cache.lookup_or_begin(8, b"eight", true), CacheOutcome::Hit(_)));
    }
}
