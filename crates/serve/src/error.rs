//! Client-side error type of the design service.

use crate::protocol::WireError;
use std::fmt;
use std::io;

/// Everything a [`DesignClient`](crate::DesignClient) call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level I/O failed (connect, read, write, or a dropped
    /// connection mid-frame).
    Io(io::Error),
    /// The server's response payload did not decode.
    Wire(WireError),
    /// The response answered a different request id than the one sent.
    IdMismatch {
        /// Id that was sent.
        sent: u64,
        /// Id that came back.
        received: u64,
    },
    /// Every retry attempt failed; carries the final attempt's error.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The last attempt's failure, rendered.
        last: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(error) => write!(f, "service i/o failed: {error}"),
            ServeError::Wire(error) => write!(f, "service response malformed: {error}"),
            ServeError::IdMismatch { sent, received } => {
                write!(f, "response id {received} does not match request id {sent}")
            }
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(error) => Some(error),
            ServeError::Wire(error) => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(error: io::Error) -> Self {
        ServeError::Io(error)
    }
}

impl From<WireError> for ServeError {
    fn from(error: WireError) -> Self {
        ServeError::Wire(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_cause() {
        let io_err = ServeError::from(io::Error::new(io::ErrorKind::BrokenPipe, "pipe"));
        assert!(io_err.to_string().contains("pipe"));
        let wire = ServeError::from(WireError::Invalid { what: "job tag" });
        assert!(wire.to_string().contains("job tag"));
        let mismatch = ServeError::IdMismatch { sent: 1, received: 2 };
        assert!(mismatch.to_string().contains("id 2"));
        let exhausted =
            ServeError::RetriesExhausted { attempts: 5, last: "server busy".to_string() };
        assert!(exhausted.to_string().contains("5 attempts"));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(std::error::Error::source(&exhausted).is_none());
    }
}
