//! Deterministic fault injection for the design server.
//!
//! A [`ChaosConfig`] turns the server into its own adversary: per request it
//! may panic the worker mid-job, stall the worker past the deadline, drop
//! the connection before responding, or truncate/corrupt the response frame.
//! Every decision is drawn from a [`SimRng`] stream derived from
//! `(chaos seed, request serial)` — the same derivation scheme the campaign
//! layer uses for scenarios — so a chaos soak is exactly reproducible: same
//! seed, same request order, same faults.

use cps_flexray::SimRng;

/// Fault-injection probabilities. `Default` is all-zeros (no chaos), so a
/// production server pays nothing for the capability.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Base seed of every per-request fault stream.
    pub seed: u64,
    /// P(worker panics mid-job) — exercises `catch_unwind` isolation.
    pub worker_panic_probability: f64,
    /// P(worker stalls before executing) — exercises the deadline watchdog.
    pub worker_stall_probability: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// P(connection dropped instead of responding) — exercises client retry.
    pub drop_connection_probability: f64,
    /// P(response frame cut short) — exercises client-side truncation
    /// handling.
    pub truncate_response_probability: f64,
    /// P(response payload bytes flipped) — exercises client-side decode
    /// validation.
    pub corrupt_response_probability: f64,
}

/// The faults chosen for one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Panic the worker inside the job.
    pub panic_worker: bool,
    /// Sleep `stall_ms` before executing the job.
    pub stall_worker: bool,
    /// Close the connection instead of writing the response.
    pub drop_connection: bool,
    /// Write only a prefix of the response frame, then close.
    pub truncate_response: bool,
    /// Flip bytes in the response payload before framing it.
    pub corrupt_response: bool,
}

impl ChaosConfig {
    /// The fault plan for the request with this server-assigned serial
    /// number. Pure function of `(self.seed, serial)`: one draw per fault
    /// axis, in declaration order.
    pub fn plan(&self, serial: u64) -> ChaosPlan {
        let mut rng = SimRng::seeded(SimRng::derive(self.seed, serial));
        ChaosPlan {
            panic_worker: rng.next_unit() < self.worker_panic_probability,
            stall_worker: rng.next_unit() < self.worker_stall_probability,
            drop_connection: rng.next_unit() < self.drop_connection_probability,
            truncate_response: rng.next_unit() < self.truncate_response_probability,
            corrupt_response: rng.next_unit() < self.corrupt_response_probability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_never_injects() {
        let chaos = ChaosConfig::default();
        for serial in 0..100 {
            assert_eq!(chaos.plan(serial), ChaosPlan::default());
        }
    }

    #[test]
    fn plans_are_deterministic_per_serial() {
        let chaos = ChaosConfig {
            seed: 7,
            worker_panic_probability: 0.3,
            drop_connection_probability: 0.3,
            truncate_response_probability: 0.3,
            ..ChaosConfig::default()
        };
        for serial in 0..50 {
            assert_eq!(chaos.plan(serial), chaos.plan(serial));
        }
        let plans: Vec<_> = (0..200).map(|serial| chaos.plan(serial)).collect();
        assert!(plans.iter().any(|p| p.panic_worker));
        assert!(plans.iter().any(|p| p.drop_connection));
        assert!(plans.iter().any(|p| !p.panic_worker && !p.drop_connection));
    }

    #[test]
    fn certain_probabilities_always_fire() {
        let chaos = ChaosConfig {
            seed: 1,
            worker_panic_probability: 1.0,
            worker_stall_probability: 1.0,
            stall_ms: 5,
            drop_connection_probability: 1.0,
            truncate_response_probability: 1.0,
            corrupt_response_probability: 1.0,
        };
        let plan = chaos.plan(12);
        assert!(plan.panic_worker && plan.stall_worker && plan.drop_connection);
        assert!(plan.truncate_response && plan.corrupt_response);
    }
}
