//! The fail-operational design server.
//!
//! A [`DesignServer`] listens on a Unix-domain socket and executes design /
//! sweep / campaign jobs on a bounded worker pool, wrapped in four
//! robustness layers:
//!
//! 1. **Deadlines** — a watchdog thread flips a per-request [`CancelToken`]
//!    when the deadline expires; the token is threaded into the exact
//!    allocator's node checkpoints, the fleet designer's item boundaries and
//!    the campaign's scenario boundaries, so a hostile job stops within one
//!    unit of work. If a worker stalls anyway (chaos does this on purpose),
//!    the connection handler still answers: it waits at most
//!    `deadline + grace` before producing a structured
//!    [`ErrorKind::DeadlineExceeded`].
//! 2. **Graceful degradation** — exact-search cuts (deadline or node
//!    budget) fall back to the greedy incumbent and are reported with
//!    `certified_optimal = false`; a cut sweep returns its completed prefix
//!    with `complete = false`. Degraded never masquerades as exact.
//! 3. **Load shedding** — the job queue is a bounded `sync_channel`; when
//!    it is full the request is answered [`Outcome::Busy`] immediately
//!    instead of queueing without bound. Memory is O(queue depth), not
//!    O(open connections).
//! 4. **Panic isolation** — worker jobs run under `catch_unwind`; a panic
//!    becomes a structured [`ErrorKind::WorkerPanic`] response, the worker
//!    thread survives, and the artifact cache is completed-with-error so
//!    single-flight joiners are never stranded and no partial artifact is
//!    cached.
//!
//! Everything is `std` — threads, channels, condvars — because the build
//! environment has no async runtime. Nominal-path responses (no deadline
//! pressure, no chaos) are bit-identical to calling the design pipeline
//! directly: the wire format round-trips every `f64` by bit pattern and the
//! server adds no arithmetic of its own.

use crate::cache::{ArtifactCache, CacheOutcome, DesignArtifact};
use crate::chaos::{ChaosConfig, ChaosPlan};
use crate::protocol::{
    read_frame, write_frame, CampaignJob, CampaignResult, DesignJob, DesignResult, ErrorKind,
    FamilyReadout, Job, Outcome, Request, Response, SweepJob, SweepResult, SweepRow,
};
use cps_core::{ApplicationSpec, CoreError, FleetDesigner, RobustnessCampaign, RobustnessSweep};
use cps_core::BusConfigSweep;
use cps_flexray::FlexRayConfig;
use cps_sched::{AllocatorConfig, CancelToken, OptimalAllocator, SchedError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration. The defaults favour test determinism over
/// throughput; production callers tune `workers` and `queue_depth`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket path (a stale file is removed on bind).
    pub socket_path: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue sheds with [`Outcome::Busy`].
    pub queue_depth: usize,
    /// Artifact-cache capacity (design artifacts, LRU).
    pub cache_capacity: usize,
    /// Extra wait beyond a request's deadline before the handler gives up
    /// on its worker and answers `DeadlineExceeded` itself.
    pub grace: Duration,
    /// Fault injection; `None` disables chaos entirely.
    pub chaos: Option<ChaosConfig>,
}

impl ServerConfig {
    /// A configuration with defaults (2 workers, queue depth 16, cache 32,
    /// 2 s grace, no chaos).
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket_path: socket_path.into(),
            workers: 2,
            queue_depth: 16,
            cache_capacity: 32,
            grace: Duration::from_secs(2),
            chaos: None,
        }
    }
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests decoded.
    pub requests: u64,
    /// Requests shed with [`Outcome::Busy`].
    pub shed: u64,
    /// Design artifacts actually computed (cache misses that led).
    pub designs_computed: u64,
    /// Requests served from the artifact cache.
    pub cache_hits: u64,
    /// Requests that joined another request's in-flight computation.
    pub deduped: u64,
    /// Worker panics isolated by `catch_unwind`.
    pub worker_panics: u64,
    /// Requests that terminated with `DeadlineExceeded`.
    pub deadline_expired: u64,
    /// Malformed frames / payloads rejected.
    pub protocol_errors: u64,
}

#[derive(Default)]
struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    designs_computed: AtomicU64,
    cache_hits: AtomicU64,
    deduped: AtomicU64,
    worker_panics: AtomicU64,
    deadline_expired: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            designs_computed: self.designs_computed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Deadline watchdog
// ---------------------------------------------------------------------------

struct Armed {
    at: Instant,
    token: CancelToken,
}

impl PartialEq for Armed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for Armed {}
impl PartialOrd for Armed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Armed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at)
    }
}

#[derive(Default)]
struct WatchState {
    queue: BinaryHeap<Reverse<Armed>>,
    shutdown: bool,
}

/// One thread, many deadlines: a min-heap of `(expiry, token)` pairs
/// serviced under a condvar. Arming is O(log n); expiry flips the token —
/// cancellation itself stays cooperative (and allocation-free) inside the
/// compute kernels.
#[derive(Default)]
struct Watchdog {
    state: Mutex<WatchState>,
    signal: Condvar,
}

impl Watchdog {
    fn arm(&self, at: Instant, token: CancelToken) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.queue.push(Reverse(Armed { at, token }));
        self.signal.notify_one();
    }

    fn shutdown(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.shutdown = true;
        self.signal.notify_one();
    }

    fn run(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            while state.queue.peek().is_some_and(|Reverse(armed)| armed.at <= now) {
                let Reverse(armed) = state.queue.pop().expect("peeked");
                armed.token.cancel();
            }
            state = match state.queue.peek().map(|Reverse(armed)| armed.at) {
                Some(next) => {
                    let wait = next.saturating_duration_since(Instant::now());
                    self.signal
                        .wait_timeout(state, wait)
                        .unwrap_or_else(|p| p.into_inner())
                        .0
                }
                None => self.signal.wait(state).unwrap_or_else(|p| p.into_inner()),
            };
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

struct JobEnvelope {
    request: Request,
    plan: ChaosPlan,
    stall_ms: u64,
    token: CancelToken,
    respond: SyncSender<Outcome>,
}

struct Shared {
    config: ServerConfig,
    stats: ServerStats,
    cache: ArtifactCache,
    serial: AtomicU64,
    shutdown: AtomicBool,
    watchdog: Watchdog,
}

/// The running design service.
pub struct DesignServer;

/// Handle to a running server: observe it, then shut it down. Dropping the
/// handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl DesignServer {
    /// Binds the socket and starts the accept loop, worker pool and
    /// deadline watchdog.
    ///
    /// # Errors
    ///
    /// I/O errors binding the socket.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        // A stale socket file from a crashed predecessor would make bind
        // fail; a server that exists to survive faults removes it.
        let _ = std::fs::remove_file(&config.socket_path);
        let listener = UnixListener::bind(&config.socket_path)?;

        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let (job_tx, job_rx) = sync_channel::<JobEnvelope>(queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));

        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(config.cache_capacity),
            config,
            stats: ServerStats::default(),
            serial: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            watchdog: Watchdog::default(),
        });

        let watchdog = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.watchdog.run())
        };

        let worker_handles: Vec<_> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let job_rx = Arc::clone(&job_rx);
                thread::spawn(move || worker_loop(&shared, &job_rx))
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, &listener, &job_tx))
        };

        Ok(ServerHandle { shared, accept: Some(accept), workers: worker_handles, watchdog: Some(watchdog) })
    }
}

impl ServerHandle {
    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.shared.config.socket_path
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Cached design-artifact count.
    pub fn cached_artifacts(&self) -> usize {
        self.shared.cache.len()
    }

    /// Stops accepting, drains the worker pool and removes the socket file.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `accept()`; a throwaway connection
        // wakes it so it can observe the flag.
        let _ = UnixStream::connect(&self.shared.config.socket_path);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.watchdog.shutdown();
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        let _ = std::fs::remove_file(&self.shared.config.socket_path);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Accept / connection handling
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener, job_tx: &SyncSender<JobEnvelope>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        let job_tx = job_tx.clone();
        // Handlers are detached: each one lives exactly as long as its
        // connection (clients close after every exchange), and a handler
        // blocked in read wakes with EOF the moment its peer goes away.
        thread::spawn(move || handle_connection(&shared, stream, &job_tx));
    }
}

fn error_outcome(kind: ErrorKind, message: impl Into<String>) -> Outcome {
    Outcome::Error { kind, message: message.into() }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: UnixStream, job_tx: &SyncSender<JobEnvelope>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(_) => {
                // Oversized or truncated frame: answer structurally (the
                // request id is unknowable) and drop the connection — the
                // stream offset can no longer be trusted.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let response =
                    Response { id: 0, outcome: error_outcome(ErrorKind::Protocol, "bad frame") };
                let _ = write_frame(&mut stream, &response.encode());
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(error) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let response = Response {
                    id: 0,
                    outcome: error_outcome(ErrorKind::Protocol, error.to_string()),
                };
                let _ = write_frame(&mut stream, &response.encode());
                return;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let id = request.id;
        let serial = shared.serial.fetch_add(1, Ordering::Relaxed);
        let plan = shared
            .config
            .chaos
            .as_ref()
            .map(|chaos| chaos.plan(serial))
            .unwrap_or_default();
        let stall_ms = shared.config.chaos.as_ref().map_or(0, |chaos| chaos.stall_ms);

        let token = CancelToken::new();
        let deadline = (request.deadline_ms > 0)
            .then(|| Duration::from_millis(u64::from(request.deadline_ms)));
        if let Some(deadline) = deadline {
            shared.watchdog.arm(Instant::now() + deadline, token.clone());
        }

        let (respond_tx, respond_rx) = sync_channel::<Outcome>(1);
        let envelope =
            JobEnvelope { request, plan, stall_ms, token, respond: respond_tx };
        let outcome = match job_tx.try_send(envelope) {
            Ok(()) => wait_for_worker(shared, &respond_rx, deadline),
            Err(TrySendError::Full(_)) => {
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                Outcome::Busy
            }
            Err(TrySendError::Disconnected(_)) => {
                error_outcome(ErrorKind::Shutdown, "server is shutting down")
            }
        };
        if matches!(&outcome, Outcome::Error { kind: ErrorKind::DeadlineExceeded, .. }) {
            shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        }

        // Response-side chaos: exercised faults a real deployment sees as
        // crashed peers and dirty links.
        if plan.drop_connection {
            return;
        }
        let mut bytes = Response { id, outcome }.encode();
        if plan.corrupt_response {
            // Flip the id's low byte: the client detects the mismatch and
            // retries (a silent payload flip could decode into plausible
            // nonsense, which no client can be asked to detect).
            bytes[0] ^= 0xff;
        }
        if plan.truncate_response {
            let cut = bytes.len() / 2;
            let mut prefix = (bytes.len() as u32).to_le_bytes().to_vec();
            prefix.extend_from_slice(&bytes[..cut]);
            let _ = stream.write_all(&prefix);
            let _ = stream.flush();
            return;
        }
        if write_frame(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

/// Waits for the worker's verdict, but never longer than
/// `deadline + grace`: a stalled worker cannot stall the *response*.
fn wait_for_worker(
    shared: &Arc<Shared>,
    respond_rx: &Receiver<Outcome>,
    deadline: Option<Duration>,
) -> Outcome {
    // Without a deadline the wait is still bounded — a server that can hang
    // forever fails the fail-operational contract.
    let cap = deadline.map_or(Duration::from_secs(600), |d| d + shared.config.grace);
    match respond_rx.recv_timeout(cap) {
        Ok(outcome) => outcome,
        Err(_) => error_outcome(
            ErrorKind::DeadlineExceeded,
            "deadline expired before the worker produced a result",
        ),
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, jobs: &Arc<Mutex<Receiver<JobEnvelope>>>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let envelope = {
            let guard = jobs.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv_timeout(Duration::from_millis(50))
        };
        let Ok(envelope) = envelope else { continue };
        if envelope.plan.stall_worker {
            thread::sleep(Duration::from_millis(envelope.stall_ms));
        }
        let panic_worker = envelope.plan.panic_worker;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if panic_worker {
                panic!("chaos: induced worker panic");
            }
            execute_job(shared, &envelope.request, &envelope.token)
        }))
        .unwrap_or_else(|payload| {
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            error_outcome(ErrorKind::WorkerPanic, message)
        });
        // The handler may have timed out and gone; that is its business.
        let _ = envelope.respond.send(outcome);
    }
}

fn map_core_error(error: &CoreError) -> Outcome {
    match error {
        CoreError::Cancelled => error_outcome(
            ErrorKind::DeadlineExceeded,
            "deadline expired before the pipeline completed",
        ),
        other => error_outcome(ErrorKind::DesignFailed, other.to_string()),
    }
}

fn execute_job(shared: &Arc<Shared>, request: &Request, token: &CancelToken) -> Outcome {
    // Decode-validate the design problem before touching the cache, so an
    // invalid request can never become a leader that poisons a key.
    let design_job = request.job.design();
    let specs: Result<Vec<ApplicationSpec>, _> =
        design_job.specs.iter().cloned().map(|spec| spec.into_spec()).collect();
    let (specs, alloc, bus) = match (
        specs,
        design_job.alloc.clone().into_config(),
        design_job.bus.clone().into_config(),
    ) {
        (Ok(specs), Ok(alloc), Ok(bus)) => (specs, alloc, bus),
        (Err(error), _, _) | (_, Err(error), _) | (_, _, Err(error)) => {
            return error_outcome(ErrorKind::InvalidRequest, error.to_string())
        }
    };

    let key = design_job.content_key();
    let node_budget = (request.node_budget > 0).then_some(request.node_budget);
    let (artifact, from_cache) = match obtain_artifact(
        shared,
        key,
        request.require_certified,
        &specs,
        &alloc,
        bus,
        node_budget,
        token,
    ) {
        Ok(found) => found,
        Err(outcome) => return outcome,
    };

    match &request.job {
        Job::Design(_) => design_outcome(&artifact, from_cache),
        Job::Sweep(sweep) => sweep_outcome(&artifact, from_cache, sweep, &alloc, token),
        Job::Campaign(campaign) => campaign_outcome(&artifact, from_cache, campaign, token),
    }
}

/// Cache lookup with single-flight: hit, join the in-flight leader, or
/// lead the computation ourselves. Returns the artifact and whether it was
/// reused (for the response's `from_cache` flag).
#[allow(clippy::too_many_arguments)]
fn obtain_artifact(
    shared: &Arc<Shared>,
    key: u64,
    require_certified: bool,
    specs: &[ApplicationSpec],
    alloc: &AllocatorConfig,
    bus: FlexRayConfig,
    node_budget: Option<u64>,
    token: &CancelToken,
) -> Result<(Arc<DesignArtifact>, bool), Outcome> {
    loop {
        match shared.cache.lookup_or_begin(key, require_certified) {
            CacheOutcome::Hit(artifact) => {
                shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((artifact, true));
            }
            CacheOutcome::Join(receiver) => match receiver.recv() {
                Ok(Ok(artifact)) if artifact.certified_optimal || !require_certified => {
                    shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
                    return Ok((artifact, true));
                }
                // Leader degraded (or failed, or vanished) but *our*
                // request is still live: loop and lead the computation
                // under our own token and budget.
                Ok(Ok(_)) | Ok(Err(_)) | Err(_) => {
                    if token.is_cancelled() {
                        return Err(map_core_error(&CoreError::Cancelled));
                    }
                    continue;
                }
            },
            CacheOutcome::Lead => {
                let designer = FleetDesigner::new().with_cancel_token(Some(token.clone()));
                let computed = catch_unwind(AssertUnwindSafe(|| {
                    designer.design_fleet_optimal_budgeted(
                        specs.to_vec(),
                        alloc,
                        bus,
                        node_budget,
                    )
                }));
                match computed {
                    Ok(Ok(budgeted)) => {
                        let artifact = Arc::new(DesignArtifact {
                            fleet: Arc::new(budgeted.fleet),
                            certified_optimal: budgeted.certified_optimal,
                        });
                        shared.stats.designs_computed.fetch_add(1, Ordering::Relaxed);
                        shared.cache.complete(key, Ok(Arc::clone(&artifact)));
                        return Ok((artifact, false));
                    }
                    Ok(Err(error)) => {
                        shared.cache.complete(key, Err(error.to_string()));
                        return Err(map_core_error(&error));
                    }
                    Err(payload) => {
                        // Leader contract: joiners are unblocked with an
                        // error and the key stays computable — then the
                        // panic continues to the worker's isolation layer.
                        shared
                            .cache
                            .complete(key, Err("design computation panicked".to_string()));
                        resume_unwind(payload);
                    }
                }
            }
        }
    }
}

fn design_outcome(artifact: &DesignArtifact, from_cache: bool) -> Outcome {
    let table = match artifact.fleet.timing_table() {
        Ok(table) => table,
        Err(error) => return map_core_error(&error),
    };
    Outcome::Design(DesignResult {
        certified_optimal: artifact.certified_optimal,
        from_cache,
        slots: artifact
            .fleet
            .allocation()
            .slots
            .iter()
            .map(|slot| slot.iter().map(|&app| app as u32).collect())
            .collect(),
        table: table.as_ref().clone(),
    })
}

fn sweep_outcome(
    artifact: &DesignArtifact,
    from_cache: bool,
    job: &SweepJob,
    alloc: &AllocatorConfig,
    token: &CancelToken,
) -> Outcome {
    let table = match artifact.fleet.timing_table() {
        Ok(table) => table,
        Err(error) => return map_core_error(&error),
    };
    let mut sweep = BusConfigSweep::new(artifact.fleet.bus_config());
    if !job.cycle_lengths.is_empty() {
        sweep = sweep.with_cycle_lengths(job.cycle_lengths.clone());
    }
    if !job.static_slot_counts.is_empty() {
        sweep = sweep.with_static_slot_counts(
            job.static_slot_counts.iter().map(|&count| count as usize).collect(),
        );
    }
    if !job.slot_lengths.is_empty() {
        sweep = sweep.with_slot_lengths(job.slot_lengths.clone());
    }

    let mut rows = Vec::new();
    let mut complete = true;
    for bus in sweep.configs() {
        // Deadline checkpoint per candidate: a cut sweep returns the
        // completed prefix with `complete = false`.
        if token.is_cancelled() {
            complete = false;
            break;
        }
        let candidate = AllocatorConfig {
            max_slots: alloc.max_slots.min(bus.static_slot_count),
            slot_timing: sweep.slot_timing_for(&bus),
            ..*alloc
        };
        let mut row = SweepRow {
            cycle_length: bus.cycle_length,
            static_slot_count: bus.static_slot_count as u32,
            static_slot_length: bus.static_slot_length,
            feasible: false,
            slot_count: 0,
            certified_optimal: true,
        };
        let mut solver = match OptimalAllocator::new(&table, &candidate) {
            Ok(solver) => solver,
            Err(_) => {
                rows.push(row);
                continue;
            }
        };
        solver.set_cancel_token(Some(token.clone()));
        match solver.solve() {
            Ok(allocation) => {
                row.feasible = true;
                row.slot_count = allocation.slots.len() as u32;
                row.certified_optimal = solver.certified_optimal();
                rows.push(row);
            }
            Err(SchedError::SearchCancelled { .. }) => {
                complete = false;
                break;
            }
            Err(_) => rows.push(row),
        }
    }
    Outcome::Sweep(SweepResult { from_cache, complete, rows })
}

fn campaign_outcome(
    artifact: &DesignArtifact,
    from_cache: bool,
    job: &CampaignJob,
    token: &CancelToken,
) -> Outcome {
    let sweep = RobustnessSweep::new(
        job.drop_probabilities.clone(),
        job.scenarios_per_intensity,
        job.duration,
    );
    let campaign = RobustnessCampaign::new(Arc::clone(&artifact.fleet), job.seed)
        .with_workers(1)
        .with_cancel_token(Some(token.clone()));
    match campaign.run(&sweep) {
        Ok(stats) => Outcome::Campaign(CampaignResult {
            from_cache,
            total: stats.total,
            families: stats
                .settling_probabilities(job.alpha)
                .into_iter()
                .map(|family| FamilyReadout {
                    label: family.label,
                    trials: family.trials,
                    successes: family.successes,
                    estimate: family.estimate,
                    lower: family.lower,
                    upper: family.upper,
                })
                .collect(),
        }),
        Err(error) => map_core_error(&error),
    }
}

/// Constructs a [`DesignJob`] from native pipeline types (convenience for
/// clients and tests).
pub fn design_job(
    specs: &[ApplicationSpec],
    alloc: &AllocatorConfig,
    bus: &FlexRayConfig,
) -> DesignJob {
    DesignJob {
        specs: specs.iter().map(crate::protocol::WireAppSpec::from_spec).collect(),
        alloc: crate::protocol::WireAllocatorConfig::from_config(alloc),
        bus: crate::protocol::WireBusConfig::from_config(bus),
    }
}
