//! The fail-operational design server.
//!
//! A [`DesignServer`] listens on a Unix-domain socket — and, when
//! [`ServerConfig::tcp_addr`] is set, a TCP socket beside it — and executes
//! design / sweep / campaign jobs on a bounded worker pool, wrapped in four
//! robustness layers:
//!
//! 1. **Deadlines** — a watchdog thread flips a per-request [`CancelToken`]
//!    when the deadline expires; the token is threaded into the exact
//!    allocator's node checkpoints, the fleet designer's item boundaries and
//!    the campaign's scenario boundaries, so a hostile job stops within one
//!    unit of work. If a worker stalls anyway (chaos does this on purpose),
//!    the connection handler still answers: it waits at most
//!    `deadline + grace` before producing a structured
//!    [`ErrorKind::DeadlineExceeded`].
//! 2. **Graceful degradation** — exact-search cuts (deadline or node
//!    budget) fall back to the greedy incumbent and are reported with
//!    `certified_optimal = false`; a cut sweep returns its completed prefix
//!    with `complete = false`. Degraded never masquerades as exact.
//! 3. **Load shedding** — the job queue is a bounded `sync_channel`; when
//!    it is full the request is answered [`Outcome::Busy`] immediately
//!    instead of queueing without bound. Memory is O(queue depth), not
//!    O(open connections).
//! 4. **Panic isolation** — worker jobs run under `catch_unwind`; a panic
//!    becomes a structured [`ErrorKind::WorkerPanic`] response, the worker
//!    thread survives, and the artifact cache is completed-with-error so
//!    single-flight joiners are never stranded and no partial artifact is
//!    cached.
//!
//! Both transports share one accept path: `accept_loop` and
//! `handle_connection` are generic over the stream (`Read + Write`), so the
//! Unix and TCP listeners differ only in how a connection is produced. The
//! accept loop backs off (capped exponential sleep) on persistent accept
//! errors — EMFILE must not pin a core — and every live handler is tracked
//! in a registry so [`ServerHandle::shutdown`] is quiescent (no handler
//! mid-write) before the listening sockets are removed.
//!
//! A campaign request with `progress_every > 0` is answered as a *stream*:
//! zero or more non-terminal [`Outcome::Progress`] frames (per-family
//! statistics snapshots) followed by exactly one terminal frame that is
//! bit-identical to the single response a non-streamed request would get.
//! When the client stops reading (drops its stream), the next progress
//! write fails and the handler fires the job's [`CancelToken`] — early
//! cancellation costs at most one emission interval of extra compute.
//!
//! Everything is `std` — threads, channels, condvars — because the build
//! environment has no async runtime. Nominal-path responses (no deadline
//! pressure, no chaos) are bit-identical to calling the design pipeline
//! directly: the wire format round-trips every `f64` by bit pattern and the
//! server adds no arithmetic of its own.

use crate::cache::{ArtifactCache, CacheOutcome, DesignArtifact};
use crate::chaos::{ChaosConfig, ChaosPlan};
use crate::protocol::{
    read_frame, write_frame, CampaignJob, CampaignProgress, CampaignResult, DesignJob,
    DesignResult, ErrorKind, FamilyProgress, FamilyReadout, Job, Outcome, Request, Response,
    SweepJob, SweepResult, SweepRow,
};
use cps_core::BusConfigSweep;
use cps_core::{
    ApplicationSpec, CampaignStats, CoreError, FleetDesigner, RobustnessCampaign, RobustnessSweep,
};
use cps_flexray::FlexRayConfig;
use cps_sched::{AllocatorConfig, CancelToken, PortfolioAllocator, PortfolioConfig, SchedError};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration. The defaults favour test determinism over
/// throughput; production callers tune `workers` and `queue_depth`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-domain socket path (a stale file is removed on bind).
    pub socket_path: PathBuf,
    /// Optional TCP listen address served *beside* the Unix socket; both
    /// transports feed the same worker pool, cache and stats. Bind to port
    /// 0 and read the resolved address from [`ServerHandle::tcp_addr`].
    pub tcp_addr: Option<SocketAddr>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue sheds with [`Outcome::Busy`].
    pub queue_depth: usize,
    /// Artifact-cache capacity (design artifacts, LRU).
    pub cache_capacity: usize,
    /// Extra wait beyond a request's deadline before the handler gives up
    /// on its worker and answers `DeadlineExceeded` itself.
    pub grace: Duration,
    /// Fault injection; `None` disables chaos entirely.
    pub chaos: Option<ChaosConfig>,
    /// Worker threads of each exact-allocation portfolio search (design
    /// jobs and sweep candidates alike); `0` (the default) uses the
    /// machine's available parallelism. Any setting yields bit-identical
    /// answers — parallelism only changes how fast a search finishes
    /// inside its deadline and node budget, which aggregate across the
    /// workers of one search.
    pub allocator_threads: usize,
}

impl ServerConfig {
    /// A configuration with defaults (Unix transport only, 2 workers,
    /// queue depth 16, cache 32, 2 s grace, no chaos).
    pub fn new(socket_path: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket_path: socket_path.into(),
            tcp_addr: None,
            workers: 2,
            queue_depth: 16,
            cache_capacity: 32,
            grace: Duration::from_secs(2),
            chaos: None,
            allocator_threads: 0,
        }
    }
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted (both transports).
    pub connections: u64,
    /// `accept()` failures absorbed by the backoff loop.
    pub accept_errors: u64,
    /// Requests decoded.
    pub requests: u64,
    /// Requests shed with [`Outcome::Busy`].
    pub shed: u64,
    /// Design artifacts actually computed (cache misses that led).
    pub designs_computed: u64,
    /// Requests served from the artifact cache.
    pub cache_hits: u64,
    /// Requests that joined another request's in-flight computation.
    pub deduped: u64,
    /// Worker panics isolated by `catch_unwind`.
    pub worker_panics: u64,
    /// Requests that terminated with `DeadlineExceeded`.
    pub deadline_expired: u64,
    /// Malformed frames / payloads rejected.
    pub protocol_errors: u64,
    /// Non-terminal [`Outcome::Progress`] frames written.
    pub progress_frames: u64,
    /// Streams cancelled because the client stopped reading mid-campaign.
    pub streams_cancelled: u64,
}

#[derive(Default)]
struct ServerStats {
    connections: AtomicU64,
    accept_errors: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    designs_computed: AtomicU64,
    cache_hits: AtomicU64,
    deduped: AtomicU64,
    worker_panics: AtomicU64,
    deadline_expired: AtomicU64,
    protocol_errors: AtomicU64,
    progress_frames: AtomicU64,
    streams_cancelled: AtomicU64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            designs_computed: self.designs_computed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            progress_frames: self.progress_frames.load(Ordering::Relaxed),
            streams_cancelled: self.streams_cancelled.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

/// A closure that force-closes a connection from another thread (shutdown
/// uses it to wake handlers blocked in `read`).
type Closer = Box<dyn Fn() + Send + Sync>;

/// A listener the generic accept loop can drive. The stream only needs
/// `Read + Write` — the framing in [`crate::protocol`] is already
/// transport-agnostic — plus a way to mint a [`Closer`].
trait ServeTransport: Send + 'static {
    /// The connection stream this transport produces.
    type Stream: Read + Write + Send + 'static;
    /// Accepts one connection.
    fn accept_stream(&self) -> std::io::Result<Self::Stream>;
    /// A handle that forces `stream` closed from another thread; `None`
    /// when the handle cannot be cloned (the handler then exits on its own
    /// at the next read).
    fn closer(stream: &Self::Stream) -> Option<Closer>;
}

impl ServeTransport for UnixListener {
    type Stream = UnixStream;

    fn accept_stream(&self) -> std::io::Result<UnixStream> {
        self.accept().map(|(stream, _)| stream)
    }

    fn closer(stream: &UnixStream) -> Option<Closer> {
        let clone = stream.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = clone.shutdown(Shutdown::Both);
        }))
    }
}

impl ServeTransport for TcpListener {
    type Stream = TcpStream;

    fn accept_stream(&self) -> std::io::Result<TcpStream> {
        let (stream, _) = self.accept()?;
        // Request/response frames are small and latency-bound; never trade
        // a frame's latency for Nagle coalescing.
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn closer(stream: &TcpStream) -> Option<Closer> {
        let clone = stream.try_clone().ok()?;
        Some(Box::new(move || {
            let _ = clone.shutdown(Shutdown::Both);
        }))
    }
}

// ---------------------------------------------------------------------------
// Handler registry (quiescent shutdown)
// ---------------------------------------------------------------------------

#[derive(Default)]
struct HandlerState {
    next: u64,
    live: HashMap<u64, Option<Closer>>,
}

/// Tracks live connection handlers so shutdown can (a) force their streams
/// closed — waking any handler blocked in `read` — and (b) wait until every
/// handler has actually exited before the listening sockets are removed.
#[derive(Default)]
struct Handlers {
    state: Mutex<HandlerState>,
    quiesced: Condvar,
}

impl Handlers {
    fn lock(&self) -> std::sync::MutexGuard<'_, HandlerState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn register(&self, closer: Option<Closer>) -> u64 {
        let mut state = self.lock();
        let id = state.next;
        state.next += 1;
        state.live.insert(id, closer);
        id
    }

    fn deregister(&self, id: u64) {
        let mut state = self.lock();
        state.live.remove(&id);
        if state.live.is_empty() {
            self.quiesced.notify_all();
        }
    }

    fn live(&self) -> usize {
        self.lock().live.len()
    }

    /// Force-closes every live handler's stream (wakes blocked reads with
    /// EOF / an error).
    fn close_all(&self) {
        let state = self.lock();
        for closer in state.live.values().flatten() {
            closer();
        }
    }

    /// Waits until every handler has exited, or `timeout` elapses. Returns
    /// whether quiescence was reached.
    fn wait_quiescent(&self, timeout: Duration) -> bool {
        let give_up = Instant::now() + timeout;
        let mut state = self.lock();
        while !state.live.is_empty() {
            let now = Instant::now();
            if now >= give_up {
                return false;
            }
            state = self
                .quiesced
                .wait_timeout(state, give_up - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
        true
    }
}

/// Deregisters a handler even if `handle_connection` panics.
struct HandlerGuard<'a> {
    handlers: &'a Handlers,
    id: u64,
}

impl Drop for HandlerGuard<'_> {
    fn drop(&mut self) {
        self.handlers.deregister(self.id);
    }
}

// ---------------------------------------------------------------------------
// Deadline watchdog
// ---------------------------------------------------------------------------

struct Armed {
    at: Instant,
    token: CancelToken,
}

impl PartialEq for Armed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for Armed {}
impl PartialOrd for Armed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Armed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at)
    }
}

#[derive(Default)]
struct WatchState {
    queue: BinaryHeap<Reverse<Armed>>,
    shutdown: bool,
}

/// One thread, many deadlines: a min-heap of `(expiry, token)` pairs
/// serviced under a condvar. Arming is O(log n); expiry flips the token —
/// cancellation itself stays cooperative (and allocation-free) inside the
/// compute kernels.
#[derive(Default)]
struct Watchdog {
    state: Mutex<WatchState>,
    signal: Condvar,
}

impl Watchdog {
    fn arm(&self, at: Instant, token: CancelToken) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.queue.push(Reverse(Armed { at, token }));
        self.signal.notify_one();
    }

    fn shutdown(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.shutdown = true;
        self.signal.notify_one();
    }

    fn run(&self) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            while state.queue.peek().is_some_and(|Reverse(armed)| armed.at <= now) {
                let Reverse(armed) = state.queue.pop().expect("peeked");
                armed.token.cancel();
            }
            state = match state.queue.peek().map(|Reverse(armed)| armed.at) {
                Some(next) => {
                    let wait = next.saturating_duration_since(Instant::now());
                    self.signal
                        .wait_timeout(state, wait)
                        .unwrap_or_else(|p| p.into_inner())
                        .0
                }
                None => self.signal.wait(state).unwrap_or_else(|p| p.into_inner()),
            };
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Response-channel depth: room for a few in-flight progress frames before
/// the worker blocks on the handler's write — bounded memory, natural
/// backpressure.
const RESPOND_DEPTH: usize = 4;

struct JobEnvelope {
    request: Request,
    plan: ChaosPlan,
    stall_ms: u64,
    token: CancelToken,
    /// Carries zero or more non-terminal [`Outcome::Progress`] values,
    /// then exactly one terminal outcome.
    respond: SyncSender<Outcome>,
}

struct Shared {
    config: ServerConfig,
    stats: ServerStats,
    cache: ArtifactCache,
    handlers: Handlers,
    serial: AtomicU64,
    shutdown: AtomicBool,
    watchdog: Watchdog,
}

/// The running design service.
pub struct DesignServer;

/// Handle to a running server: observe it, then shut it down. Dropping the
/// handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    accepts: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl DesignServer {
    /// Binds the Unix socket (and the TCP listener when
    /// [`ServerConfig::tcp_addr`] is set) and starts the accept loops,
    /// worker pool and deadline watchdog.
    ///
    /// # Errors
    ///
    /// I/O errors binding either socket.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        // A stale socket file from a crashed predecessor would make bind
        // fail; a server that exists to survive faults removes it.
        let _ = std::fs::remove_file(&config.socket_path);
        let listener = UnixListener::bind(&config.socket_path)?;
        let tcp_listener = match config.tcp_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let tcp_addr = match &tcp_listener {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };

        let workers = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let (job_tx, job_rx) = sync_channel::<JobEnvelope>(queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));

        let shared = Arc::new(Shared {
            cache: ArtifactCache::new(config.cache_capacity),
            config,
            stats: ServerStats::default(),
            handlers: Handlers::default(),
            serial: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            watchdog: Watchdog::default(),
        });

        let watchdog = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || shared.watchdog.run())
        };

        let worker_handles: Vec<_> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let job_rx = Arc::clone(&job_rx);
                thread::spawn(move || worker_loop(&shared, &job_rx))
            })
            .collect();

        let mut accepts = Vec::new();
        {
            let shared = Arc::clone(&shared);
            let job_tx = job_tx.clone();
            accepts.push(thread::spawn(move || accept_loop(&shared, &listener, &job_tx)));
        }
        if let Some(tcp_listener) = tcp_listener {
            let shared = Arc::clone(&shared);
            accepts.push(thread::spawn(move || accept_loop(&shared, &tcp_listener, &job_tx)));
        }

        Ok(ServerHandle {
            shared,
            tcp_addr,
            accepts,
            workers: worker_handles,
            watchdog: Some(watchdog),
        })
    }
}

impl ServerHandle {
    /// The socket path Unix clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.shared.config.socket_path
    }

    /// The resolved TCP address (ports requested as 0 come back concrete);
    /// `None` when the server is Unix-only.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Cached design-artifact count.
    pub fn cached_artifacts(&self) -> usize {
        self.shared.cache.len()
    }

    /// Live connection-handler count (diagnostic; 0 after shutdown).
    pub fn live_handlers(&self) -> usize {
        self.shared.handlers.live()
    }

    /// Stops accepting, force-closes live connections, waits until every
    /// handler has exited, drains the worker pool and removes the socket
    /// file — quiescent, not merely signalled. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loops block in `accept()`; a throwaway connection per
        // transport wakes each so it can observe the flag.
        let _ = UnixStream::connect(&self.shared.config.socket_path);
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
        for accept in self.accepts.drain(..) {
            let _ = accept.join();
        }
        // Wake handlers blocked in `read`; the ones waiting on workers
        // observe the shutdown flag within one poll slice. The wait is
        // bounded — a wedged handler must not wedge shutdown itself.
        self.shared.handlers.close_all();
        let quiesce = self.shared.config.grace + Duration::from_secs(5);
        let _ = self.shared.handlers.wait_quiescent(quiesce);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.watchdog.shutdown();
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        let _ = std::fs::remove_file(&self.shared.config.socket_path);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Accept / connection handling
// ---------------------------------------------------------------------------

/// First backoff after an accept error.
const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Backoff ceiling — long enough to unpin the core, short enough that
/// recovery (and shutdown) stay responsive.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(100);

fn accept_backoff(consecutive_errors: u32) -> Duration {
    ACCEPT_BACKOFF_BASE
        .saturating_mul(2u32.saturating_pow(consecutive_errors.saturating_sub(1).min(16)))
        .min(ACCEPT_BACKOFF_CAP)
}

fn accept_loop<T: ServeTransport>(
    shared: &Arc<Shared>,
    listener: &T,
    job_tx: &SyncSender<JobEnvelope>,
) {
    let mut consecutive_errors = 0u32;
    loop {
        let stream = match listener.accept_stream() {
            Ok(stream) => {
                consecutive_errors = 0;
                stream
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A persistent error (EMFILE, a revoked listener) must not
                // busy-spin: sleep with capped exponential backoff, reset
                // on the next successful accept.
                shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                consecutive_errors = consecutive_errors.saturating_add(1);
                thread::sleep(accept_backoff(consecutive_errors));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let handler_id = shared.handlers.register(T::closer(&stream));
        let shared = Arc::clone(shared);
        let job_tx = job_tx.clone();
        // Handlers are detached threads, but *registered*: shutdown
        // force-closes their streams and waits for the registry to drain,
        // so no handler is still mid-write when the sockets are removed.
        thread::spawn(move || {
            let _guard = HandlerGuard { handlers: &shared.handlers, id: handler_id };
            handle_connection(&shared, stream, &job_tx);
        });
    }
}

fn error_outcome(kind: ErrorKind, message: impl Into<String>) -> Outcome {
    Outcome::Error { kind, message: message.into() }
}

fn handle_connection<S: Read + Write>(
    shared: &Arc<Shared>,
    mut stream: S,
    job_tx: &SyncSender<JobEnvelope>,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(_) => {
                // Oversized or truncated frame: answer structurally (the
                // request id is unknowable) and drop the connection — the
                // stream offset can no longer be trusted.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let response =
                    Response { id: 0, outcome: error_outcome(ErrorKind::Protocol, "bad frame") };
                let _ = write_frame(&mut stream, &response.encode());
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(error) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let response = Response {
                    id: 0,
                    outcome: error_outcome(ErrorKind::Protocol, error.to_string()),
                };
                let _ = write_frame(&mut stream, &response.encode());
                return;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let id = request.id;
        let serial = shared.serial.fetch_add(1, Ordering::Relaxed);
        let plan = shared
            .config
            .chaos
            .as_ref()
            .map(|chaos| chaos.plan(serial))
            .unwrap_or_default();
        let stall_ms = shared.config.chaos.as_ref().map_or(0, |chaos| chaos.stall_ms);

        let token = CancelToken::new();
        let deadline = (request.deadline_ms > 0)
            .then(|| Duration::from_millis(u64::from(request.deadline_ms)));
        if let Some(deadline) = deadline {
            shared.watchdog.arm(Instant::now() + deadline, token.clone());
        }

        let (respond_tx, respond_rx) = sync_channel::<Outcome>(RESPOND_DEPTH);
        let envelope =
            JobEnvelope { request, plan, stall_ms, token: token.clone(), respond: respond_tx };
        let outcome = match job_tx.try_send(envelope) {
            Ok(()) => {
                match stream_worker_outcomes(shared, &mut stream, id, &respond_rx, deadline, &token)
                {
                    Some(outcome) => outcome,
                    // The peer stopped reading mid-stream; the campaign was
                    // cancelled and the connection is dead.
                    None => return,
                }
            }
            Err(TrySendError::Full(_)) => {
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                Outcome::Busy
            }
            Err(TrySendError::Disconnected(_)) => {
                error_outcome(ErrorKind::Shutdown, "server is shutting down")
            }
        };
        if matches!(&outcome, Outcome::Error { kind: ErrorKind::DeadlineExceeded, .. }) {
            shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        }

        // Response-side chaos: exercised faults a real deployment sees as
        // crashed peers and dirty links. Chaos mutates the *terminal* frame
        // only — progress frames have already been streamed verbatim.
        if plan.drop_connection {
            return;
        }
        let mut bytes = Response { id, outcome }.encode();
        if plan.corrupt_response {
            // Flip the id's low byte: the client detects the mismatch and
            // retries (a silent payload flip could decode into plausible
            // nonsense, which no client can be asked to detect).
            bytes[0] ^= 0xff;
        }
        if plan.truncate_response {
            let cut = bytes.len() / 2;
            let mut prefix = (bytes.len() as u32).to_le_bytes().to_vec();
            prefix.extend_from_slice(&bytes[..cut]);
            let _ = stream.write_all(&prefix);
            let _ = stream.flush();
            return;
        }
        if write_frame(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

/// Relays worker outcomes to the connection: non-terminal
/// [`Outcome::Progress`] frames are written immediately, the terminal
/// outcome is returned for the caller to write (chaos applies only there).
///
/// The wait is bounded by `deadline + grace` (600 s with no deadline) — a
/// stalled worker cannot stall the *response* — and polls the shutdown flag
/// so a draining server answers [`ErrorKind::Shutdown`] promptly instead of
/// sitting out a grace period.
///
/// Returns `None` when the peer stopped reading mid-stream: the job's
/// [`CancelToken`] is fired (early cancellation) and the connection is
/// abandoned.
fn stream_worker_outcomes<S: Read + Write>(
    shared: &Arc<Shared>,
    stream: &mut S,
    id: u64,
    respond_rx: &Receiver<Outcome>,
    deadline: Option<Duration>,
    token: &CancelToken,
) -> Option<Outcome> {
    let cap = deadline.map_or(Duration::from_secs(600), |d| d + shared.config.grace);
    let give_up = Instant::now() + cap;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Some(error_outcome(ErrorKind::Shutdown, "server is shutting down"));
        }
        let now = Instant::now();
        if now >= give_up {
            return Some(error_outcome(
                ErrorKind::DeadlineExceeded,
                "deadline expired before the worker produced a result",
            ));
        }
        let slice = give_up.duration_since(now).min(Duration::from_millis(50));
        match respond_rx.recv_timeout(slice) {
            Ok(outcome) if outcome.is_terminal() => return Some(outcome),
            Ok(progress) => {
                let bytes = Response { id, outcome: progress }.encode();
                if write_frame(stream, &bytes).is_err() {
                    // The client dropped its stream: cancel the campaign
                    // instead of computing results nobody will read.
                    token.cancel();
                    shared.stats.streams_cancelled.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                shared.stats.progress_frames.fetch_add(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                return Some(error_outcome(ErrorKind::Shutdown, "server is shutting down"))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, jobs: &Arc<Mutex<Receiver<JobEnvelope>>>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let envelope = {
            let guard = jobs.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv_timeout(Duration::from_millis(50))
        };
        let Ok(envelope) = envelope else { continue };
        if envelope.plan.stall_worker {
            thread::sleep(Duration::from_millis(envelope.stall_ms));
        }
        let panic_worker = envelope.plan.panic_worker;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if panic_worker {
                panic!("chaos: induced worker panic");
            }
            execute_job(shared, &envelope.request, &envelope.token, &envelope.respond)
        }))
        .unwrap_or_else(|payload| {
            shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            error_outcome(ErrorKind::WorkerPanic, message)
        });
        // The handler may have timed out and gone; that is its business.
        let _ = envelope.respond.send(outcome);
    }
}

fn map_core_error(error: &CoreError) -> Outcome {
    match error {
        CoreError::Cancelled => error_outcome(
            ErrorKind::DeadlineExceeded,
            "deadline expired before the pipeline completed",
        ),
        other => error_outcome(ErrorKind::DesignFailed, other.to_string()),
    }
}

fn execute_job(
    shared: &Arc<Shared>,
    request: &Request,
    token: &CancelToken,
    progress: &SyncSender<Outcome>,
) -> Outcome {
    // Decode-validate the design problem before touching the cache, so an
    // invalid request can never become a leader that poisons a key.
    let design_job = request.job.design();
    let specs: Result<Vec<ApplicationSpec>, _> =
        design_job.specs.iter().cloned().map(|spec| spec.into_spec()).collect();
    let (specs, alloc, bus) = match (
        specs,
        design_job.alloc.clone().into_config(),
        design_job.bus.clone().into_config(),
    ) {
        (Ok(specs), Ok(alloc), Ok(bus)) => (specs, alloc, bus),
        (Err(error), _, _) | (_, Err(error), _) | (_, _, Err(error)) => {
            return error_outcome(ErrorKind::InvalidRequest, error.to_string())
        }
    };

    let job_bytes = design_job.canonical_bytes();
    let key = design_job.content_key();
    let node_budget = (request.node_budget > 0).then_some(request.node_budget);
    let (artifact, from_cache) = match obtain_artifact(
        shared,
        key,
        &job_bytes,
        request.require_certified,
        &specs,
        &alloc,
        bus,
        node_budget,
        token,
    ) {
        Ok(found) => found,
        Err(outcome) => return outcome,
    };

    match &request.job {
        Job::Design(_) => design_outcome(&artifact, from_cache),
        Job::Sweep(sweep) => sweep_outcome(
            &artifact,
            from_cache,
            sweep,
            &alloc,
            shared.config.allocator_threads,
            token,
        ),
        Job::Campaign(campaign) => {
            campaign_outcome(&artifact, from_cache, campaign, token, progress)
        }
    }
}

/// Cache lookup with single-flight: hit, join the in-flight leader, or
/// lead the computation ourselves. Returns the artifact and whether it was
/// reused (for the response's `from_cache` flag).
#[allow(clippy::too_many_arguments)]
fn obtain_artifact(
    shared: &Arc<Shared>,
    key: u64,
    job_bytes: &[u8],
    require_certified: bool,
    specs: &[ApplicationSpec],
    alloc: &AllocatorConfig,
    bus: FlexRayConfig,
    node_budget: Option<u64>,
    token: &CancelToken,
) -> Result<(Arc<DesignArtifact>, bool), Outcome> {
    loop {
        match shared.cache.lookup_or_begin(key, job_bytes, require_certified) {
            CacheOutcome::Hit(artifact) => {
                shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((artifact, true));
            }
            CacheOutcome::Join(receiver) => match receiver.recv() {
                Ok(Ok(artifact)) if artifact.certified_optimal || !require_certified => {
                    shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
                    return Ok((artifact, true));
                }
                // Leader degraded (or failed, or vanished) but *our*
                // request is still live: loop and lead the computation
                // under our own token and budget.
                Ok(Ok(_)) | Ok(Err(_)) | Err(_) => {
                    if token.is_cancelled() {
                        return Err(map_core_error(&CoreError::Cancelled));
                    }
                    continue;
                }
            },
            CacheOutcome::Lead => {
                let designer = FleetDesigner::new()
                    .with_threads(shared.config.allocator_threads)
                    .with_cancel_token(Some(token.clone()));
                let computed = catch_unwind(AssertUnwindSafe(|| {
                    designer.design_fleet_optimal_budgeted(
                        specs.to_vec(),
                        alloc,
                        bus,
                        node_budget,
                    )
                }));
                match computed {
                    Ok(Ok(budgeted)) => {
                        let artifact = Arc::new(DesignArtifact {
                            fleet: Arc::new(budgeted.fleet),
                            certified_optimal: budgeted.certified_optimal,
                        });
                        shared.stats.designs_computed.fetch_add(1, Ordering::Relaxed);
                        shared.cache.complete(key, job_bytes, Ok(Arc::clone(&artifact)));
                        return Ok((artifact, false));
                    }
                    Ok(Err(error)) => {
                        shared.cache.complete(key, job_bytes, Err(error.to_string()));
                        return Err(map_core_error(&error));
                    }
                    Err(payload) => {
                        // Leader contract: joiners are unblocked with an
                        // error and the key stays computable — then the
                        // panic continues to the worker's isolation layer.
                        shared.cache.complete(
                            key,
                            job_bytes,
                            Err("design computation panicked".to_string()),
                        );
                        resume_unwind(payload);
                    }
                }
            }
        }
    }
}

fn design_outcome(artifact: &DesignArtifact, from_cache: bool) -> Outcome {
    let table = match artifact.fleet.timing_table() {
        Ok(table) => table,
        Err(error) => return map_core_error(&error),
    };
    Outcome::Design(DesignResult {
        certified_optimal: artifact.certified_optimal,
        from_cache,
        slots: artifact
            .fleet
            .allocation()
            .slots
            .iter()
            .map(|slot| slot.iter().map(|&app| app as u32).collect())
            .collect(),
        table: table.as_ref().clone(),
    })
}

fn sweep_outcome(
    artifact: &DesignArtifact,
    from_cache: bool,
    job: &SweepJob,
    alloc: &AllocatorConfig,
    allocator_threads: usize,
    token: &CancelToken,
) -> Outcome {
    let table = match artifact.fleet.timing_table() {
        Ok(table) => table,
        Err(error) => return map_core_error(&error),
    };
    let mut sweep = BusConfigSweep::new(artifact.fleet.bus_config());
    if !job.cycle_lengths.is_empty() {
        sweep = sweep.with_cycle_lengths(job.cycle_lengths.clone());
    }
    if !job.static_slot_counts.is_empty() {
        sweep = sweep.with_static_slot_counts(
            job.static_slot_counts.iter().map(|&count| count as usize).collect(),
        );
    }
    if !job.slot_lengths.is_empty() {
        sweep = sweep.with_slot_lengths(job.slot_lengths.clone());
    }

    let mut rows = Vec::new();
    let mut complete = true;
    for bus in sweep.configs() {
        // Deadline checkpoint per candidate: a cut sweep returns the
        // completed prefix with `complete = false`.
        if token.is_cancelled() {
            complete = false;
            break;
        }
        let candidate = AllocatorConfig {
            max_slots: alloc.max_slots.min(bus.static_slot_count),
            slot_timing: sweep.slot_timing_for(&bus),
            ..*alloc
        };
        let mut row = SweepRow {
            cycle_length: bus.cycle_length,
            static_slot_count: bus.static_slot_count as u32,
            static_slot_length: bus.static_slot_length,
            feasible: false,
            slot_count: 0,
            certified_optimal: true,
        };
        let portfolio = PortfolioConfig::with_threads(allocator_threads);
        let mut solver = match PortfolioAllocator::new(&table, &candidate, &portfolio) {
            Ok(solver) => solver,
            Err(_) => {
                rows.push(row);
                continue;
            }
        };
        solver.set_cancel_token(Some(token.clone()));
        match solver.solve() {
            Ok(allocation) => {
                row.feasible = true;
                row.slot_count = allocation.slots.len() as u32;
                row.certified_optimal = solver.certified_optimal();
                rows.push(row);
            }
            Err(SchedError::SearchCancelled { .. }) => {
                complete = false;
                break;
            }
            Err(_) => rows.push(row),
        }
    }
    Outcome::Sweep(SweepResult { from_cache, complete, rows })
}

/// A per-family statistics snapshot for one [`Outcome::Progress`] frame.
fn progress_snapshot(stats: &CampaignStats, alpha: f64) -> CampaignProgress {
    let readouts = stats.settling_probabilities(alpha);
    CampaignProgress {
        total: stats.total,
        families: stats
            .families
            .iter()
            .zip(readouts)
            .map(|(family, readout)| FamilyProgress {
                label: family.label.clone(),
                scenarios: family.scenarios,
                settled: family.settled,
                deadlines_met: family.deadlines_met,
                settling_mean: family.settling_time.mean(),
                settling_p50: family.settling_p50.estimate(),
                settling_p95: family.settling_p95.estimate(),
                peak_mean: family.peak_norm.mean(),
                peak_p95: family.peak_p95.estimate(),
                tt_share_mean: family.tt_share.mean(),
                estimate: readout.estimate,
                lower: readout.lower,
                upper: readout.upper,
            })
            .collect(),
    }
}

fn campaign_outcome(
    artifact: &DesignArtifact,
    from_cache: bool,
    job: &CampaignJob,
    token: &CancelToken,
    progress: &SyncSender<Outcome>,
) -> Outcome {
    let sweep = RobustnessSweep::new(
        job.drop_probabilities.clone(),
        job.scenarios_per_intensity,
        job.duration,
    );
    let mut campaign = RobustnessCampaign::new(Arc::clone(&artifact.fleet), job.seed)
        .with_workers(1)
        .with_cancel_token(Some(token.clone()));
    if job.progress_every > 0 {
        // Progress is emitted at chunk boundaries; align the chunk
        // granularity with the requested cadence so small campaigns stream
        // too. Chunking never changes the aggregates (the campaign's
        // determinism contract), only when snapshots can be taken.
        campaign = campaign.with_chunk_size(job.progress_every.clamp(1, 64));
    }
    // Progress emission rides the respond channel: a failed send means the
    // handler (and therefore the client) is gone — the callback returns
    // false and the campaign cancels. The *terminal* frame is computed from
    // the same aggregation whether streaming or not, so `progress_every`
    // never changes the final answer.
    let result = campaign.run_with_progress(&sweep, job.progress_every, |snapshot| {
        progress.send(Outcome::Progress(progress_snapshot(snapshot, job.alpha))).is_ok()
    });
    match result {
        Ok(stats) => Outcome::Campaign(CampaignResult {
            from_cache,
            total: stats.total,
            families: stats
                .settling_probabilities(job.alpha)
                .into_iter()
                .map(|family| FamilyReadout {
                    label: family.label,
                    trials: family.trials,
                    successes: family.successes,
                    estimate: family.estimate,
                    lower: family.lower,
                    upper: family.upper,
                })
                .collect(),
        }),
        Err(error) => map_core_error(&error),
    }
}

/// Constructs a [`DesignJob`] from native pipeline types (convenience for
/// clients and tests).
pub fn design_job(
    specs: &[ApplicationSpec],
    alloc: &AllocatorConfig,
    bus: &FlexRayConfig,
) -> DesignJob {
    DesignJob {
        specs: specs.iter().map(crate::protocol::WireAppSpec::from_spec).collect(),
        alloc: crate::protocol::WireAllocatorConfig::from_config(alloc),
        bus: crate::protocol::WireBusConfig::from_config(bus),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transport whose `accept` always fails — the EMFILE scenario.
    struct FailingTransport {
        calls: Arc<AtomicU64>,
    }

    impl ServeTransport for FailingTransport {
        type Stream = UnixStream;

        fn accept_stream(&self) -> std::io::Result<UnixStream> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Err(std::io::Error::other("induced accept failure"))
        }

        fn closer(_stream: &UnixStream) -> Option<Closer> {
            None
        }
    }

    fn test_shared() -> Arc<Shared> {
        Arc::new(Shared {
            cache: ArtifactCache::new(4),
            config: ServerConfig::new("/tmp/cps-serve-accept-backoff-unused.sock"),
            stats: ServerStats::default(),
            handlers: Handlers::default(),
            serial: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            watchdog: Watchdog::default(),
        })
    }

    #[test]
    fn accept_errors_back_off_instead_of_busy_spinning() {
        // Regression: the pre-fix loop did a bare `continue` on accept
        // error, burning a core — over 150 ms it would rack up millions of
        // accept calls. With 1 ms → 100 ms capped backoff the count stays
        // tiny.
        let shared = test_shared();
        let calls = Arc::new(AtomicU64::new(0));
        let transport = FailingTransport { calls: Arc::clone(&calls) };
        let (job_tx, _job_rx) = sync_channel::<JobEnvelope>(1);
        let loop_thread = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, &transport, &job_tx))
        };
        thread::sleep(Duration::from_millis(150));
        let observed = calls.load(Ordering::Relaxed);
        assert!(observed >= 2, "the loop must keep retrying, saw {observed} calls");
        assert!(
            observed < 1000,
            "accept loop busy-spun: {observed} accept calls in 150 ms"
        );
        assert_eq!(shared.stats.snapshot().accept_errors, observed);
        shared.shutdown.store(true, Ordering::SeqCst);
        loop_thread.join().unwrap();
    }

    #[test]
    fn accept_backoff_grows_and_caps() {
        assert_eq!(accept_backoff(1), Duration::from_millis(1));
        assert_eq!(accept_backoff(2), Duration::from_millis(2));
        assert_eq!(accept_backoff(4), Duration::from_millis(8));
        assert_eq!(accept_backoff(8), ACCEPT_BACKOFF_CAP);
        assert_eq!(accept_backoff(u32::MAX), ACCEPT_BACKOFF_CAP);
    }

    #[test]
    fn handler_registry_reaches_quiescence() {
        let handlers = Arc::new(Handlers::default());
        let closed = Arc::new(AtomicBool::new(false));
        let id = {
            let closed = Arc::clone(&closed);
            handlers.register(Some(Box::new(move || closed.store(true, Ordering::SeqCst))))
        };
        assert_eq!(handlers.live(), 1);
        assert!(!handlers.wait_quiescent(Duration::from_millis(20)), "still live");
        handlers.close_all();
        assert!(closed.load(Ordering::SeqCst), "close_all must invoke the closer");
        let waiter = {
            let handlers = Arc::clone(&handlers);
            thread::spawn(move || handlers.wait_quiescent(Duration::from_secs(5)))
        };
        handlers.deregister(id);
        assert!(waiter.join().unwrap(), "deregistering the last handler quiesces");
        assert_eq!(handlers.live(), 0);
    }
}
