//! # cps-serve
//!
//! The fail-operational design service of the DATE 2019 reproduction: a
//! long-running server that executes fleet-design, bus-geometry-sweep and
//! robustness-campaign jobs over a Unix-domain socket — and, optionally, a
//! TCP listener beside it — engineered to keep answering under deadline
//! pressure, overload, worker panics and injected connection faults.
//!
//! - [`protocol`] — the hand-rolled length-prefixed binary wire format:
//!   bit-exact `f64` transport, bounds-checked decoding that can neither
//!   panic nor over-allocate on malformed input, FNV-1a content keys for
//!   artifact addressing, and non-terminal [`Outcome::Progress`] frames
//!   for streamed campaign statistics.
//! - [`ArtifactCache`] — bounded LRU of [`DesignArtifact`]s with
//!   single-flight deduplication (K identical concurrent requests compute
//!   once); entries are verified against the full canonical job bytes, so
//!   a 64-bit hash collision is a miss, never a shared artifact.
//! - [`DesignServer`] / [`ServerHandle`] — transport-generic accept loops
//!   (Unix + TCP over one worker pool) with capped accept-error backoff
//!   and handler-registry quiescent shutdown; `std::thread` worker pool,
//!   bounded job queue with [`Outcome::Busy`] load shedding, deadline
//!   watchdog driving cooperative [`cps_sched::CancelToken`] cancellation
//!   through the allocator / designer / campaign kernels, and
//!   `catch_unwind` panic isolation.
//! - [`DesignClient`] / [`RetryPolicy`] — pooled persistent connections
//!   with poisoned-connection eviction, exponential backoff with
//!   deterministic [`cps_flexray::SimRng`] jitter, and a streaming
//!   [`CampaignStream`] whose drop cancels the campaign server-side.
//! - [`ChaosConfig`] — deterministic fault injection (worker panics and
//!   stalls, dropped/truncated/corrupted responses) keyed by
//!   `(seed, request serial)` for exactly reproducible soak tests.
//!
//! The nominal path — no deadline pressure, no chaos, no budget — returns
//! results bit-identical to calling
//! [`cps_core::FleetDesigner::design_fleet_optimal`] directly; the
//! degradation ladder (greedy incumbent with `certified_optimal = false`,
//! partial sweeps with `complete = false`) only engages when resources
//! actually run out, and always says so.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod chaos;
mod client;
mod error;
pub mod protocol;
mod server;

pub use cache::{ArtifactCache, CacheOutcome, CacheResult, DesignArtifact};
pub use chaos::{ChaosConfig, ChaosPlan};
pub use client::{CampaignStream, DesignClient, Endpoint, RequestOptions, RetryPolicy};
pub use error::ServeError;
pub use protocol::{
    CampaignJob, CampaignProgress, CampaignResult, DesignJob, DesignResult, ErrorKind,
    FamilyProgress, FamilyReadout, Job, Outcome, Request, Response, SweepJob, SweepResult,
    SweepRow, WireError, MAX_FRAME,
};
pub use server::{design_job, DesignServer, ServerConfig, ServerHandle, StatsSnapshot};
