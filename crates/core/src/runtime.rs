//! The dynamic resource-allocation runtime of Figure 1: per-application
//! mode state machines plus the non-preemptive, priority-ordered arbiter of
//! each shared TT slot.

use crate::error::{CoreError, Result};
use cps_control::CommunicationMode;

/// Phase of one application in the Figure 1 scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AppPhase {
    /// Steady state (‖x‖ ≤ E_th): the control signal uses ET communication.
    #[default]
    Steady,
    /// Transient (‖x‖ > E_th) but the TT slot is held by someone else: the
    /// signal keeps using ET communication while waiting.
    Waiting,
    /// Transient and in possession of the TT slot.
    UsingSlot,
}

/// Configuration of one application as seen by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeApp {
    /// Application name (for reporting).
    pub name: String,
    /// Switching threshold E_th of this application.
    pub threshold: f64,
    /// Index of the TT slot this application shares (from the offline slot
    /// allocation), or `None` if it never uses TT communication.
    pub slot: Option<usize>,
    /// Priority: smaller value = higher priority (the paper uses the
    /// deadline).
    pub priority: f64,
}

/// The runtime: application phases plus per-slot ownership.
#[derive(Debug, Clone)]
pub struct AllocationRuntime {
    apps: Vec<RuntimeApp>,
    phases: Vec<AppPhase>,
    /// Current holder of each slot.
    holders: Vec<Option<usize>>,
}

impl AllocationRuntime {
    /// Creates the runtime for the given applications and number of TT slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if an application references a
    /// slot index out of range or has a non-positive threshold.
    pub fn new(apps: Vec<RuntimeApp>, slot_count: usize) -> Result<Self> {
        for app in &apps {
            if let Some(slot) = app.slot {
                if slot >= slot_count {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "{} references slot {slot} but only {slot_count} slots exist",
                            app.name
                        ),
                    });
                }
            }
            if !(app.threshold > 0.0) {
                return Err(CoreError::InvalidConfig {
                    reason: format!("{}: threshold must be positive", app.name),
                });
            }
        }
        let phases = vec![AppPhase::Steady; apps.len()];
        Ok(AllocationRuntime { apps, phases, holders: vec![None; slot_count] })
    }

    /// Current phase of each application.
    pub fn phases(&self) -> &[AppPhase] {
        &self.phases
    }

    /// Number of applications managed by the runtime.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Returns every application to the steady phase and frees all slots,
    /// so the runtime can be rerun without reconstruction.
    pub fn reset(&mut self) {
        self.phases.fill(AppPhase::Steady);
        self.holders.fill(None);
    }

    /// Overrides the switching threshold of one application — the primitive
    /// behind threshold-sweep scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the index is out of range or
    /// the threshold is not positive.
    pub fn set_threshold(&mut self, index: usize, threshold: f64) -> Result<()> {
        if index >= self.apps.len() {
            return Err(CoreError::InvalidConfig {
                reason: format!("application index {index} out of range"),
            });
        }
        if !(threshold > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("{}: threshold must be positive", self.apps[index].name),
            });
        }
        self.apps[index].threshold = threshold;
        Ok(())
    }

    /// Current holder (application index) of each TT slot.
    pub fn slot_holders(&self) -> &[Option<usize>] {
        &self.holders
    }

    /// Replaces every application's slot assignment and the slot count in
    /// one atomic step — the primitive behind slot-map sweep scenarios.
    /// All phases return to steady and every slot is freed (a slot map only
    /// changes between runs); thresholds are preserved.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the assignment list does not
    /// cover every application or references a slot out of range; the
    /// runtime is left unchanged on error.
    pub fn set_allocation(
        &mut self,
        assignments: &[Option<usize>],
        slot_count: usize,
    ) -> Result<()> {
        if assignments.len() != self.apps.len() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "expected {} slot assignments, got {}",
                    self.apps.len(),
                    assignments.len()
                ),
            });
        }
        for (app, assignment) in self.apps.iter().zip(assignments) {
            if let Some(slot) = assignment {
                if *slot >= slot_count {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "{} references slot {slot} but only {slot_count} slots exist",
                            app.name
                        ),
                    });
                }
            }
        }
        for (app, assignment) in self.apps.iter_mut().zip(assignments) {
            app.slot = *assignment;
        }
        self.holders.clear();
        self.holders.resize(slot_count, None);
        self.phases.fill(AppPhase::Steady);
        Ok(())
    }

    /// Advances the scheme by one sampling period given the current
    /// plant-state norms, returning the communication mode each application
    /// must use for the upcoming period.
    ///
    /// The update follows Figure 1:
    /// 1. applications whose norm dropped to or below their threshold release
    ///    their slot and return to the steady phase;
    /// 2. applications whose norm exceeds the threshold request their slot;
    /// 3. each free slot is granted to the highest-priority waiting
    ///    application (non-preemptive — a holder is never evicted).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `norms` has the wrong length.
    pub fn step(&mut self, norms: &[f64]) -> Result<Vec<CommunicationMode>> {
        let mut modes = Vec::with_capacity(self.apps.len());
        self.step_into(norms, &mut modes)?;
        Ok(modes)
    }

    /// Allocation-free variant of [`AllocationRuntime::step`]: the modes are
    /// written into `modes` (cleared first), reusing its capacity. The
    /// co-simulation engine calls this every period with one long-lived
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `norms` has the wrong length.
    pub fn step_into(
        &mut self,
        norms: &[f64],
        modes: &mut Vec<CommunicationMode>,
    ) -> Result<()> {
        modes.clear();
        if norms.len() != self.apps.len() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "expected {} norms, got {}",
                    self.apps.len(),
                    norms.len()
                ),
            });
        }
        // 1. Releases and steady-state transitions.
        for (index, app) in self.apps.iter().enumerate() {
            let in_transient = norms[index] > app.threshold;
            match self.phases[index] {
                AppPhase::UsingSlot if !in_transient => {
                    if let Some(slot) = app.slot {
                        if self.holders[slot] == Some(index) {
                            self.holders[slot] = None;
                        }
                    }
                    self.phases[index] = AppPhase::Steady;
                }
                AppPhase::Waiting if !in_transient => {
                    // The ET controller rejected the disturbance before the
                    // slot was ever granted.
                    self.phases[index] = AppPhase::Steady;
                }
                AppPhase::Steady if in_transient => {
                    self.phases[index] =
                        if app.slot.is_some() { AppPhase::Waiting } else { AppPhase::Steady };
                }
                _ => {}
            }
        }
        // 2./3. Grant each free slot to its highest-priority waiter.
        for slot in 0..self.holders.len() {
            if self.holders[slot].is_some() {
                continue;
            }
            let waiter = self
                .apps
                .iter()
                .enumerate()
                .filter(|(index, app)| {
                    app.slot == Some(slot) && self.phases[*index] == AppPhase::Waiting
                })
                .min_by(|(_, a), (_, b)| {
                    a.priority.partial_cmp(&b.priority).expect("finite priorities")
                })
                .map(|(index, _)| index);
            if let Some(index) = waiter {
                self.holders[slot] = Some(index);
                self.phases[index] = AppPhase::UsingSlot;
            }
        }
        // Communication modes for the upcoming period.
        modes.extend(self.phases.iter().map(|phase| match phase {
            AppPhase::UsingSlot => CommunicationMode::TimeTriggered,
            _ => CommunicationMode::EventTriggered,
        }));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_apps_one_slot() -> AllocationRuntime {
        AllocationRuntime::new(
            vec![
                RuntimeApp { name: "high".into(), threshold: 0.1, slot: Some(0), priority: 1.0 },
                RuntimeApp { name: "low".into(), threshold: 0.1, slot: Some(0), priority: 2.0 },
            ],
            1,
        )
        .unwrap()
    }

    #[test]
    fn steady_state_uses_et() {
        let mut runtime = two_apps_one_slot();
        let modes = runtime.step(&[0.05, 0.05]).unwrap();
        assert!(modes.iter().all(|m| *m == CommunicationMode::EventTriggered));
        assert_eq!(runtime.slot_holders(), &[None]);
    }

    #[test]
    fn transient_application_gets_the_slot() {
        let mut runtime = two_apps_one_slot();
        let modes = runtime.step(&[0.5, 0.05]).unwrap();
        assert_eq!(modes[0], CommunicationMode::TimeTriggered);
        assert_eq!(modes[1], CommunicationMode::EventTriggered);
        assert_eq!(runtime.slot_holders(), &[Some(0)]);
        assert_eq!(runtime.phases()[0], AppPhase::UsingSlot);
    }

    #[test]
    fn slot_is_non_preemptive() {
        let mut runtime = two_apps_one_slot();
        // The low-priority application grabs the slot first.
        runtime.step(&[0.05, 0.5]).unwrap();
        assert_eq!(runtime.slot_holders(), &[Some(1)]);
        // Now the high-priority application also becomes transient: it must
        // wait (no preemption).
        let modes = runtime.step(&[0.5, 0.5]).unwrap();
        assert_eq!(runtime.slot_holders(), &[Some(1)]);
        assert_eq!(modes[0], CommunicationMode::EventTriggered);
        assert_eq!(runtime.phases()[0], AppPhase::Waiting);
        // Once the holder settles, the slot passes to the waiting application.
        let modes = runtime.step(&[0.5, 0.05]).unwrap();
        assert_eq!(runtime.slot_holders(), &[Some(0)]);
        assert_eq!(modes[0], CommunicationMode::TimeTriggered);
        assert_eq!(modes[1], CommunicationMode::EventTriggered);
    }

    #[test]
    fn priority_decides_between_simultaneous_requests() {
        let mut runtime = two_apps_one_slot();
        let modes = runtime.step(&[0.5, 0.5]).unwrap();
        assert_eq!(modes[0], CommunicationMode::TimeTriggered);
        assert_eq!(modes[1], CommunicationMode::EventTriggered);
    }

    #[test]
    fn waiting_application_can_settle_on_et_alone() {
        let mut runtime = two_apps_one_slot();
        runtime.step(&[0.05, 0.5]).unwrap(); // low holds the slot
        runtime.step(&[0.5, 0.5]).unwrap(); // high waits
        // The high-priority application settles while still waiting.
        runtime.step(&[0.05, 0.5]).unwrap();
        assert_eq!(runtime.phases()[0], AppPhase::Steady);
        assert_eq!(runtime.slot_holders(), &[Some(1)]);
    }

    #[test]
    fn application_without_slot_stays_on_et() {
        let mut runtime = AllocationRuntime::new(
            vec![RuntimeApp { name: "noslot".into(), threshold: 0.1, slot: None, priority: 1.0 }],
            0,
        )
        .unwrap();
        let modes = runtime.step(&[5.0]).unwrap();
        assert_eq!(modes[0], CommunicationMode::EventTriggered);
        assert_eq!(runtime.phases()[0], AppPhase::Steady);
    }

    #[test]
    fn reset_frees_slots_and_steadies_phases() {
        let mut runtime = two_apps_one_slot();
        runtime.step(&[0.5, 0.5]).unwrap();
        assert_eq!(runtime.slot_holders(), &[Some(0)]);
        runtime.reset();
        assert_eq!(runtime.slot_holders(), &[None]);
        assert!(runtime.phases().iter().all(|p| *p == AppPhase::Steady));
        assert_eq!(runtime.app_count(), 2);
        // The rerun reproduces the original grant.
        let modes = runtime.step(&[0.5, 0.5]).unwrap();
        assert_eq!(modes[0], CommunicationMode::TimeTriggered);
    }

    #[test]
    fn step_into_reuses_the_buffer() {
        let mut runtime = two_apps_one_slot();
        let mut modes = Vec::new();
        runtime.step_into(&[0.5, 0.05], &mut modes).unwrap();
        assert_eq!(modes, vec![CommunicationMode::TimeTriggered, CommunicationMode::EventTriggered]);
        runtime.step_into(&[0.01, 0.05], &mut modes).unwrap();
        assert_eq!(modes.len(), 2);
        assert!(runtime.step_into(&[0.1], &mut modes).is_err());
    }

    #[test]
    fn threshold_override() {
        let mut runtime = two_apps_one_slot();
        runtime.set_threshold(0, 1.0).unwrap();
        // Norm 0.5 is now below app 0's threshold: no slot request.
        let modes = runtime.step(&[0.5, 0.05]).unwrap();
        assert_eq!(modes[0], CommunicationMode::EventTriggered);
        assert!(runtime.set_threshold(5, 1.0).is_err());
        assert!(runtime.set_threshold(0, 0.0).is_err());
    }

    #[test]
    fn validation() {
        assert!(AllocationRuntime::new(
            vec![RuntimeApp { name: "x".into(), threshold: 0.1, slot: Some(3), priority: 1.0 }],
            1,
        )
        .is_err());
        assert!(AllocationRuntime::new(
            vec![RuntimeApp { name: "x".into(), threshold: 0.0, slot: None, priority: 1.0 }],
            0,
        )
        .is_err());
        let mut runtime = two_apps_one_slot();
        assert!(runtime.step(&[0.1]).is_err());
    }
}
