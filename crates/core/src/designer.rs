//! The fleet-level design pipeline: one workspace-threaded, parallel
//! designer behind every design entry point.
//!
//! The paper's resource-efficient flow is fleet-scoped — controllers, dwell
//! characterisation and slot allocation are co-designed for the whole
//! application set — yet the seed synthesised one application at a time with
//! private solver temporaries. [`FleetDesigner`] makes the design path a
//! first-class pipeline, mirroring what [`crate::ScenarioBatch`] did for the
//! simulation path:
//!
//! * **Workspace-threaded:** every controller synthesis runs through one
//!   [`cps_control::DesignWorkspace`] bundle per worker (Riccati, matrix
//!   exponential and LU temporaries, pooled by dimension), and every
//!   characterisation through one [`cps_control::CharacterizationWorkspace`]
//!   (switched-kernel state buffers, power-bound matrices, saturated-sim
//!   scratch), so a fleet design allocates solver and simulation scratch
//!   once per worker instead of once per application.
//! * **Parallel:** independent application designs (and the dwell/wait
//!   characterisations feeding the slot allocator) fan out across
//!   `std::thread::scope` workers over contiguous index chunks, exactly like
//!   the scenario batch engine.
//! * **Deterministic:** results are stitched back in input order and the
//!   workspace path is bit-identical to the allocating reference path, so
//!   the designed artifacts are **bit-for-bit independent of the worker
//!   count** — the property the parity suite (`tests/fleet_designer.rs`)
//!   asserts on the paper fleet and on random stable plants.
//!
//! Every design entry point routes through this pipeline:
//! [`crate::ControlApplication::design`] (a one-application fleet),
//! [`crate::DesignedFleet::design`] / [`crate::DesignedFleet::design_optimal`]
//! (characterisation computed once, shared by the greedy incumbent and the
//! exact branch-and-bound search), and
//! [`crate::BusConfigSweep::scenarios_for`] (characterisation computed once
//! and reused across every candidate bus instead of re-derived per
//! configuration).
//!
//! Note: the container this repository grows in is single-core, so the
//! parallel fan-out degenerates to the sequential path there; the speedup
//! claim of the `fleet_design` bench should be re-measured on a multi-core
//! host (see ROADMAP).

use crate::application::{ApplicationSpec, ControlApplication};
use crate::characterize::derive_timing_params_with;
use crate::error::{CoreError, Result};
use crate::fleet::DesignedFleet;
use cps_control::{CharacterizationWorkspace, DesignWorkspace};
use cps_flexray::FlexRayConfig;
use cps_sched::{
    AllocatorConfig, AppTimingParams, CancelToken, PortfolioAllocator, PortfolioConfig, SchedError,
};

/// The scratch bundle one design worker owns and threads through every item
/// of its chunk: the solver-workspace pool of the synthesis path and the
/// switched-kernel / saturated-sim pool of the characterisation path. Both
/// pools are dimension-keyed and re-allocate only when a previously unseen
/// dimension appears, so a warm worker pays no per-application setup cost
/// for scratch.
#[derive(Debug, Default)]
struct WorkerScratch {
    design: DesignWorkspace,
    characterization: CharacterizationWorkspace,
}

/// The reusable fleet-design pipeline: owns the worker policy and threads
/// one [`DesignWorkspace`] bundle per worker through every synthesis.
///
/// The designer is cheap to construct (workspaces are allocated inside the
/// workers, per run); clone-free and stateless between runs, one instance
/// can drive any number of fleets.
#[derive(Debug, Clone)]
pub struct FleetDesigner {
    threads: usize,
    /// Cooperative cancellation checkpoint, polled between pipeline items
    /// (one synthesis or characterisation per poll); `None` never cancels.
    cancel: Option<CancelToken>,
}

/// Outcome of the budget-aware exact design flow
/// ([`FleetDesigner::design_fleet_optimal_budgeted`]): the designed fleet
/// plus whether its slot map is the *proven* minimum or a degraded (greedy
/// incumbent) answer returned because the search budget ran out.
#[derive(Debug)]
pub struct BudgetedDesign {
    /// The designed, validated fleet.
    pub fleet: DesignedFleet,
    /// `true` when the exact search ran to exhaustion (the slot map is the
    /// provable minimum); `false` when the node budget or the cancellation
    /// token cut the search and the slot map is only the best incumbent —
    /// the `certified_optimal=false` rung of the service degradation ladder.
    pub certified_optimal: bool,
}

impl Default for FleetDesigner {
    fn default() -> Self {
        FleetDesigner::new()
    }
}

impl FleetDesigner {
    /// A designer using the machine's available parallelism.
    pub fn new() -> Self {
        FleetDesigner { threads: 0, cancel: None }
    }

    /// A designer that always runs on the calling thread (the retained
    /// sequential path; still workspace-threaded).
    pub fn sequential() -> Self {
        FleetDesigner { threads: 1, cancel: None }
    }

    /// Sets the worker-thread count; `0` (the default) uses the machine's
    /// available parallelism. The designed artifacts are bit-identical for
    /// any setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs (or clears) a cooperative cancellation token. Every pipeline
    /// stage polls it between items — a relaxed atomic load — and a fired
    /// token surfaces as [`CoreError::Cancelled`] from the design entry
    /// points. A token changes *whether* a run completes, never *what* it
    /// computes: completed runs are bit-identical with or without one.
    #[must_use]
    pub fn with_cancel_token(mut self, token: Option<CancelToken>) -> Self {
        self.cancel = token;
        self
    }

    /// The worker count a run will actually use for `item_count` independent
    /// design items.
    pub fn effective_threads(&self, item_count: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        configured.clamp(1, item_count.max(1))
    }

    /// Designs every application of the fleet through the shared pipeline
    /// and returns them in input order.
    ///
    /// # Errors
    ///
    /// Returns the first design error in input order (specs after the
    /// failing one in the same chunk are not designed).
    pub fn design(&self, specs: Vec<ApplicationSpec>) -> Result<Vec<ControlApplication>> {
        self.run(specs, |scratch, spec| ControlApplication::design_with(spec, &mut scratch.design))
    }

    /// Designs a single application (a one-application fleet) on the calling
    /// thread — the routing target of [`ControlApplication::design`].
    ///
    /// # Errors
    ///
    /// Propagates design failures.
    pub fn design_one(&self, spec: ApplicationSpec) -> Result<ControlApplication> {
        ControlApplication::design_with(spec, &mut DesignWorkspace::new())
    }

    /// Characterises every application (dwell/wait curve, non-monotonic
    /// model fit) and returns the fleet's Table-I rows in input order — the
    /// single characterisation pass shared by the greedy allocator seed, the
    /// exact branch-and-bound search and every candidate bus of a
    /// [`crate::BusConfigSweep`].
    ///
    /// # Errors
    ///
    /// Returns the first characterisation error in input order.
    pub fn characterize(&self, apps: &[ControlApplication]) -> Result<Vec<AppTimingParams>> {
        // Same fan-out machinery as `design`, threading the worker's pooled
        // `CharacterizationWorkspace` through every application so the
        // switched-kernel / saturated-sim scratch is allocated once per
        // worker and dimension instead of once per application.
        self.run(apps.iter().collect(), |scratch, app| {
            derive_timing_params_with(app, &mut scratch.characterization)
        })
    }

    /// The full greedy design flow: design the applications, characterise
    /// them once, allocate TT slots with the configured greedy strategy
    /// (capped by the bus's static segment) and freeze the fleet.
    ///
    /// # Errors
    ///
    /// Propagates design, characterisation, allocation and fleet-validation
    /// failures.
    pub fn design_fleet(
        &self,
        specs: Vec<ApplicationSpec>,
        config: &AllocatorConfig,
        bus_config: FlexRayConfig,
    ) -> Result<DesignedFleet> {
        let apps = self.design(specs)?;
        let table = self.characterize(&apps)?;
        let allocation = cps_sched::allocate_slots(&table, &budgeted(config, &bus_config))?;
        let fleet = DesignedFleet::new(apps, allocation, bus_config)?;
        // The pass just computed is the fleet's characterisation table —
        // seed the computed-once cache so later sweeps skip even the single
        // pass.
        fleet.seed_timing_table(table);
        Ok(fleet)
    }

    /// The full exact design flow: like [`FleetDesigner::design_fleet`] but
    /// the slot map is the provable minimum of
    /// [`cps_sched::allocate_slots_portfolio`], searched by the designer's
    /// worker count (bit-identical for any setting); the single
    /// characterisation pass feeds both the greedy incumbent seed and the
    /// exact search (`config.strategy` is ignored).
    ///
    /// # Errors
    ///
    /// As [`FleetDesigner::design_fleet`], with
    /// [`cps_sched::SchedError::NoFeasibleAllocation`] when no slot map fits
    /// the bus.
    pub fn design_fleet_optimal(
        &self,
        specs: Vec<ApplicationSpec>,
        config: &AllocatorConfig,
        bus_config: FlexRayConfig,
    ) -> Result<DesignedFleet> {
        let apps = self.design(specs)?;
        self.freeze_optimal(apps, config, bus_config)
    }

    /// The budget-aware exact design flow of the design service: like
    /// [`FleetDesigner::design_fleet_optimal`], but the portfolio search
    /// runs under the designer's cancellation token and an optional node
    /// budget — both *aggregated across the portfolio's workers*, so one
    /// budget and one token govern the whole parallel search — and a
    /// cut-short search *degrades* instead of failing: the greedy incumbent
    /// is frozen into the fleet and the result carries
    /// `certified_optimal = false`.
    ///
    /// With no token and no budget the flow is bit-identical to
    /// [`FleetDesigner::design_fleet_optimal`] (same allocator, same float
    /// order, same slot map) and always certifies.
    ///
    /// # Errors
    ///
    /// As [`FleetDesigner::design_fleet_optimal`]; additionally
    /// [`CoreError::Cancelled`] when the token fires during synthesis or
    /// characterisation, or when the search is cut before *any* feasible
    /// allocation (incumbent included) is known.
    pub fn design_fleet_optimal_budgeted(
        &self,
        specs: Vec<ApplicationSpec>,
        config: &AllocatorConfig,
        bus_config: FlexRayConfig,
        node_budget: Option<u64>,
    ) -> Result<BudgetedDesign> {
        let apps = self.design(specs)?;
        let table = self.characterize(&apps)?;
        let portfolio = PortfolioConfig::with_threads(self.threads);
        let mut solver = PortfolioAllocator::new(&table, &budgeted(config, &bus_config), &portfolio)?;
        solver.set_cancel_token(self.cancel.clone());
        solver.set_node_budget(node_budget);
        let allocation = match solver.solve() {
            Ok(allocation) => allocation,
            Err(SchedError::SearchCancelled { .. }) => return Err(CoreError::Cancelled),
            Err(error) => return Err(error.into()),
        };
        let certified_optimal = solver.certified_optimal();
        drop(solver);
        let fleet = DesignedFleet::new(apps, allocation, bus_config)?;
        fleet.seed_timing_table(table);
        Ok(BudgetedDesign { fleet, certified_optimal })
    }

    /// The exact allocation-and-freeze tail shared with
    /// [`DesignedFleet::design_optimal`]: characterise once, solve the
    /// branch-and-bound optimum under the bus budget, validate.
    ///
    /// # Errors
    ///
    /// As [`FleetDesigner::design_fleet_optimal`].
    pub(crate) fn freeze_optimal(
        &self,
        apps: Vec<ControlApplication>,
        config: &AllocatorConfig,
        bus_config: FlexRayConfig,
    ) -> Result<DesignedFleet> {
        let table = self.characterize(&apps)?;
        let allocation = cps_sched::allocate_slots_portfolio(
            &table,
            &budgeted(config, &bus_config),
            &PortfolioConfig::with_threads(self.threads),
        )?;
        let fleet = DesignedFleet::new(apps, allocation, bus_config)?;
        fleet.seed_timing_table(table);
        Ok(fleet)
    }

    /// Fans `items` out over the configured workers, one [`DesignWorkspace`]
    /// per worker, contiguous chunks, results stitched in input order.
    fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(&mut WorkerScratch, T) -> Result<R> + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        // Cancellation checkpoint, polled before each item on every worker:
        // a fired token stops the chunk at its next item boundary.
        let checkpoint = |cancel: &Option<CancelToken>| -> Result<()> {
            match cancel {
                Some(token) if token.is_cancelled() => Err(CoreError::Cancelled),
                _ => Ok(()),
            }
        };
        let workers = self.effective_threads(items.len());
        if workers == 1 {
            let mut scratch = WorkerScratch::default();
            return items
                .into_iter()
                .map(|item| {
                    checkpoint(&self.cancel)?;
                    f(&mut scratch, item)
                })
                .collect();
        }

        // Contiguous chunks keep the output order (and therefore the result)
        // independent of scheduling; ceil-sized so every item is covered.
        let chunk_size = items.len().div_ceil(workers);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let f = &f;
        let cancel = &self.cancel;
        let chunk_results: Vec<Result<Vec<R>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        // Worker start-up: one scratch bundle (solver and
                        // characterisation pools), reused for every item in
                        // the chunk.
                        let mut scratch = WorkerScratch::default();
                        chunk
                            .into_iter()
                            .map(|item| {
                                checkpoint(cancel)?;
                                f(&mut scratch, item)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("design worker must not panic"))
                .collect()
        });
        let mut out = Vec::new();
        for chunk in chunk_results {
            out.extend(chunk?);
        }
        Ok(out)
    }
}

/// The allocator configuration capped by the bus's static segment.
fn budgeted(config: &AllocatorConfig, bus_config: &FlexRayConfig) -> AllocatorConfig {
    AllocatorConfig { max_slots: config.max_slots.min(bus_config.static_slot_count), ..*config }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    #[test]
    fn empty_inputs_short_circuit() {
        let designer = FleetDesigner::new();
        assert!(designer.design(Vec::new()).unwrap().is_empty());
        assert!(designer.characterize(&[]).unwrap().is_empty());
        assert_eq!(designer.effective_threads(0), 1);
        assert!(designer.effective_threads(100) >= 1);
        assert_eq!(FleetDesigner::sequential().effective_threads(100), 1);
    }

    #[test]
    fn design_errors_surface_in_input_order() {
        let mut specs = case_study::derived_fleet_specs();
        specs[1].deadline = -1.0; // invalid
        specs[4].threshold = 0.0; // also invalid, but later in input order
        let err = FleetDesigner::new().with_threads(3).design(specs).unwrap_err();
        assert!(err.to_string().contains("deadline"), "unexpected error: {err}");
    }

    #[test]
    fn design_fleet_flows_end_to_end() {
        let designer = FleetDesigner::new().with_threads(2);
        let config = AllocatorConfig::default();
        let bus = cps_flexray::FlexRayConfig::paper_case_study();
        let greedy =
            designer.design_fleet(case_study::derived_fleet_specs(), &config, bus).unwrap();
        let optimal = designer
            .design_fleet_optimal(case_study::derived_fleet_specs(), &config, bus)
            .unwrap();
        assert_eq!(greedy.app_count(), 6);
        assert!(optimal.slot_count() <= greedy.slot_count());
    }

    #[test]
    fn cancelled_designers_stop_at_item_boundaries() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 3] {
            let designer = FleetDesigner::new()
                .with_threads(threads)
                .with_cancel_token(Some(token.clone()));
            let err = designer.design(case_study::derived_fleet_specs()).unwrap_err();
            assert!(matches!(err, CoreError::Cancelled), "threads={threads}: {err}");
        }
        // Empty inputs still short-circuit before the checkpoint.
        let designer = FleetDesigner::new().with_cancel_token(Some(token));
        assert!(designer.design(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn budgeted_design_nominal_path_is_bit_identical() {
        let designer = FleetDesigner::new().with_threads(2);
        let config = AllocatorConfig::default();
        let bus = cps_flexray::FlexRayConfig::paper_case_study();
        let reference = designer
            .design_fleet_optimal(case_study::derived_fleet_specs(), &config, bus)
            .unwrap();
        let budgeted = designer
            .design_fleet_optimal_budgeted(case_study::derived_fleet_specs(), &config, bus, None)
            .unwrap();
        assert!(budgeted.certified_optimal);
        assert_eq!(budgeted.fleet.allocation(), reference.allocation());
        let reference_table = reference.timing_table().unwrap();
        let budgeted_table = budgeted.fleet.timing_table().unwrap();
        assert_eq!(reference_table.len(), budgeted_table.len());
        for (a, b) in reference_table.iter().zip(budgeted_table.iter()) {
            assert_eq!(a.xi_et.to_bits(), b.xi_et.to_bits());
            assert_eq!(a.xi_m.to_bits(), b.xi_m.to_bits());
            assert_eq!(a.k_p.to_bits(), b.k_p.to_bits());
        }
    }

    #[test]
    fn budgeted_design_degrades_instead_of_failing() {
        let designer = FleetDesigner::new();
        let config = AllocatorConfig::default();
        let bus = cps_flexray::FlexRayConfig::paper_case_study();
        // A zero node budget cuts the exact search at the root: the greedy
        // incumbent is frozen and the result refuses to certify.
        let degraded = designer
            .design_fleet_optimal_budgeted(
                case_study::derived_fleet_specs(),
                &config,
                bus,
                Some(0),
            )
            .unwrap();
        assert!(!degraded.certified_optimal);
        // The incumbent is still a *valid* (schedulable) slot map, and the
        // design-flow-seeded table cost no extra characterisation pass.
        let table = degraded.fleet.timing_table().unwrap();
        assert!(degraded.fleet.allocation().verify(&table).unwrap());
        assert_eq!(degraded.fleet.characterization_passes(), 0);
    }
}
