//! Streaming Monte-Carlo robustness campaigns with statistical settling
//! guarantees.
//!
//! Where [`crate::ScenarioBatch`] materialises one outcome per scenario,
//! the campaign engine streams: a [`ScenarioSource`] *generates* scenarios
//! on demand from `(campaign seed, scenario index)`, worker threads run them
//! on reset-and-rerun [`CoSimulation`] engines, and the results fold into
//! online per-family aggregates ([`OnlineStats`] moments plus [`P2Quantile`]
//! sketches) — memory is O(workers), never O(scenarios), so a million-run
//! campaign needs the same footprint as a hundred-run one.
//!
//! # Determinism
//!
//! A campaign's [`CampaignStats`] are bit-identical for any worker count ×
//! lane width ([`RobustnessCampaign::with_lane_width`]):
//!
//! * Per-scenario randomness comes from
//!   [`SimRng::derive`]`(campaign_seed, scenario_index)` — a pure function
//!   of the campaign seed and the scenario's position, never of worker
//!   identity or scheduling.
//! * Workers claim fixed-size contiguous chunks from an atomic cursor and
//!   return each chunk's metrics through a bounded channel; the aggregator
//!   reorders chunks and folds scenarios in strict index order. The
//!   (order-dependent) P² sketches therefore always see the same sequence.
//! * Lane-batched stepping (consecutive scenarios of a chunk packed into
//!   the lanes of one [`cps_control::BatchStepKernel`] per application)
//!   changes only how many scenarios share an instruction stream, never a
//!   trajectory: every lane owns a private bus, runtime and RNG stream, and
//!   the batched kernels are bit-identical to the scalar ones by
//!   construction.
//!
//! On top of the aggregates,
//! [`CampaignStats::settling_probabilities`] runs the statistical
//! model-checking readout: per scenario family, P(settle ≤ deadline) with an
//! exact Clopper–Pearson confidence interval ([`clopper_pearson`]).

use crate::batch::BatchCoSim;
use crate::cosim::{CoSimulation, DegradationConfig, ModeSwitchStorm, RunMetrics};
use crate::error::{CoreError, Result};
use crate::fleet::DesignedFleet;
use crate::stats::{clopper_pearson, OnlineStats, P2Quantile};
use cps_flexray::{FaultModel, GilbertElliott, SimRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

/// One generated campaign scenario: how this run differs from the designed
/// fleet. A plain value ([`Copy`]) so worker buffers can be reused without
/// allocation; unlike [`crate::ScenarioSpec`] there are no slot-map or
/// bus-config overrides — campaigns stress the *designed* configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CampaignScenario {
    /// Scenario family (index into the source's
    /// [`ScenarioSource::families`]) this run aggregates into.
    pub family: usize,
    /// Factor applied to every application's designed disturbance.
    pub disturbance_scale: f64,
    /// Factor applied to every application's switching threshold `E_th`.
    pub threshold_scale: f64,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Bus-side fault model for this run, if any.
    pub fault: Option<FaultModel>,
    /// Engine-side degradation for this run, if any.
    pub degradation: Option<DegradationConfig>,
}

/// A generator of campaign scenarios — the streaming replacement for a
/// materialised scenario list.
///
/// [`ScenarioSource::generate`] must *fully* describe scenario `index` from
/// its arguments alone: the runner hands it a derived `seed` that is a pure
/// function of the campaign seed and `index`, so the same source + campaign
/// seed always produces the same scenario stream regardless of which worker
/// asks.
pub trait ScenarioSource: Sync {
    /// Total number of scenarios in the campaign.
    fn total(&self) -> u64;

    /// Number of scenario families results are aggregated into.
    fn families(&self) -> usize;

    /// Human-readable label of family `family` (shown in reports).
    fn family_label(&self, family: usize) -> String;

    /// Writes scenario `index` into `scenario` (every field — the buffer is
    /// reused across calls and arrives reset to
    /// [`CampaignScenario::default`]). `seed` is
    /// [`SimRng::derive`]`(campaign_seed, index)`; derive all per-scenario
    /// randomness from it.
    fn generate(&self, index: u64, seed: u64, scenario: &mut CampaignScenario);
}

/// What one scenario contributes to the aggregates (kept [`Copy`] so chunk
/// buffers are flat).
#[derive(Debug, Clone, Copy)]
struct ScenarioMetrics {
    family: usize,
    /// Fleet-level settling time: the largest per-app response time, `None`
    /// if any application never settled.
    settling: Option<f64>,
    /// `true` if every application settled within its deadline.
    deadline_met: bool,
    /// Largest per-app peak norm.
    peak: f64,
    /// Fraction of application-periods spent in TT mode (static-slot
    /// utilisation).
    tt_share: f64,
}

/// Online aggregate of one scenario family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyStats {
    /// Label copied from the source.
    pub label: String,
    /// Scenarios aggregated into this family.
    pub scenarios: u64,
    /// Scenarios in which every application settled within the horizon.
    pub settled: u64,
    /// Scenarios in which every application settled within its deadline —
    /// the success count of the statistical model-checking readout.
    pub deadlines_met: u64,
    /// Moments of the fleet settling time (over settled scenarios only).
    pub settling_time: OnlineStats,
    /// P² sketch of the median settling time.
    pub settling_p50: P2Quantile,
    /// P² sketch of the 95th-percentile settling time.
    pub settling_p95: P2Quantile,
    /// Moments of the peak plant-state deviation.
    pub peak_norm: OnlineStats,
    /// P² sketch of the 95th-percentile peak deviation.
    pub peak_p95: P2Quantile,
    /// Moments of the TT (static-slot) utilisation share.
    pub tt_share: OnlineStats,
}

impl FamilyStats {
    fn new(label: String) -> Self {
        FamilyStats {
            label,
            scenarios: 0,
            settled: 0,
            deadlines_met: 0,
            settling_time: OnlineStats::new(),
            settling_p50: P2Quantile::new(0.5),
            settling_p95: P2Quantile::new(0.95),
            peak_norm: OnlineStats::new(),
            peak_p95: P2Quantile::new(0.95),
            tt_share: OnlineStats::new(),
        }
    }

    fn absorb(&mut self, metrics: &ScenarioMetrics) {
        self.scenarios += 1;
        if let Some(settling) = metrics.settling {
            self.settled += 1;
            self.settling_time.push(settling);
            self.settling_p50.push(settling);
            self.settling_p95.push(settling);
        }
        if metrics.deadline_met {
            self.deadlines_met += 1;
        }
        self.peak_norm.push(metrics.peak);
        self.peak_p95.push(metrics.peak);
        self.tt_share.push(metrics.tt_share);
    }
}

/// The statistical model-checking readout of one family:
/// P(settle ≤ deadline) with an exact binomial confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SettlingProbability {
    /// Family label.
    pub label: String,
    /// Scenarios observed.
    pub trials: u64,
    /// Scenarios in which every application settled within its deadline.
    pub successes: u64,
    /// Point estimate `successes / trials` (0 for an empty family).
    pub estimate: f64,
    /// Clopper–Pearson lower confidence bound.
    pub lower: f64,
    /// Clopper–Pearson upper confidence bound.
    pub upper: f64,
}

/// Aggregated result of a campaign: one [`FamilyStats`] per scenario family.
/// `PartialEq` compares every accumulator bit for bit — the determinism
/// tests use it to prove worker-count independence.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// Total scenarios aggregated.
    pub total: u64,
    /// Per-family aggregates, in the source's family order.
    pub families: Vec<FamilyStats>,
}

impl CampaignStats {
    fn new<S: ScenarioSource + ?Sized>(source: &S) -> Self {
        CampaignStats {
            total: 0,
            families: (0..source.families())
                .map(|family| FamilyStats::new(source.family_label(family)))
                .collect(),
        }
    }

    /// The statistical model-checking readout: per family,
    /// P(settle ≤ deadline) with a two-sided `1 − alpha` Clopper–Pearson
    /// confidence interval.
    pub fn settling_probabilities(&self, alpha: f64) -> Vec<SettlingProbability> {
        self.families
            .iter()
            .map(|family| {
                let (lower, upper) =
                    clopper_pearson(family.deadlines_met, family.scenarios, alpha);
                SettlingProbability {
                    label: family.label.clone(),
                    trials: family.scenarios,
                    successes: family.deadlines_met,
                    estimate: if family.scenarios == 0 {
                        0.0
                    } else {
                        family.deadlines_met as f64 / family.scenarios as f64
                    },
                    lower,
                    upper,
                }
            })
            .collect()
    }
}

/// The streaming campaign runner: an [`Arc`]-shared [`DesignedFleet`], a
/// campaign seed, and the worker/chunk geometry. See the module docs for
/// the determinism and memory contracts.
///
/// # Example
///
/// ```
/// use cps_core::{case_study, DesignedFleet, RobustnessCampaign, RobustnessSweep};
/// use cps_flexray::FlexRayConfig;
/// use std::sync::Arc;
///
/// let fleet = Arc::new(DesignedFleet::design(
///     case_study::derived_fleet_specs(),
///     &cps_sched::AllocatorConfig::default(),
///     FlexRayConfig::paper_case_study(),
/// )?);
/// let campaign = RobustnessCampaign::new(fleet, 42);
/// let sweep = RobustnessSweep::new(vec![0.0, 0.2], 4, 1.0);
/// let stats = campaign.run(&sweep)?;
/// assert_eq!(stats.total, 8);
/// let readout = stats.settling_probabilities(0.05);
/// assert_eq!(readout.len(), 2);
/// assert!(readout.iter().all(|p| p.lower <= p.estimate && p.estimate <= p.upper));
/// # Ok::<(), cps_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RobustnessCampaign {
    fleet: Arc<DesignedFleet>,
    seed: u64,
    workers: usize,
    chunk_size: u64,
    lane_width: usize,
    /// Cooperative cancellation checkpoint, polled at every scenario
    /// boundary on every worker; `None` never cancels.
    cancel: Option<cps_sched::CancelToken>,
}

impl RobustnessCampaign {
    /// Creates a campaign runner over a shared fleet design with the given
    /// campaign seed.
    pub fn new(fleet: Arc<DesignedFleet>, seed: u64) -> Self {
        RobustnessCampaign { fleet, seed, workers: 0, chunk_size: 64, lane_width: 4, cancel: None }
    }

    /// Sets the worker-thread count; `0` (the default) uses the machine's
    /// available parallelism. The campaign result is independent of this
    /// setting.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the scenarios-per-chunk granularity (clamped to at least 1).
    /// Smaller chunks smooth load balancing; the result is independent of
    /// this setting too.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: u64) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Sets the lane width of each worker's batched stepper (clamped to at
    /// least 1; the default is 4): up to this many consecutive scenarios of
    /// a chunk are packed into the lanes of one `BatchStepKernel` per
    /// application and stepped together, one batched sweep per period.
    /// Width 1 runs the scalar per-scenario engines instead. Like the worker
    /// count and the chunk size, this is a throughput knob only — the
    /// campaign result is bit-identical for any lane width.
    #[must_use]
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width.max(1);
        self
    }

    /// Installs (or clears) a cooperative cancellation token. Every worker
    /// polls it at each scenario boundary (a relaxed atomic load between
    /// simulations, never inside one); a fired token stops the campaign and
    /// surfaces as [`CoreError::Cancelled`] from
    /// [`RobustnessCampaign::run`]. The token never changes the aggregates a
    /// *completed* run returns.
    #[must_use]
    pub fn with_cancel_token(mut self, token: Option<cps_sched::CancelToken>) -> Self {
        self.cancel = token;
        self
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker count a run over `total` scenarios will actually use.
    pub fn effective_workers(&self, total: u64) -> usize {
        let configured = if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        };
        let chunks = total.div_ceil(self.chunk_size).max(1);
        configured.clamp(1, usize::try_from(chunks).unwrap_or(usize::MAX))
    }

    /// Runs the campaign: streams every scenario of `source` through the
    /// worker pool and returns the per-family aggregates. Memory is
    /// O(workers · chunk size); no per-scenario result is ever materialised.
    ///
    /// # Errors
    ///
    /// Returns the first error in scenario order (a scenario with invalid
    /// parameters, or an engine failure); later chunks are cancelled.
    pub fn run<S: ScenarioSource + ?Sized>(&self, source: &S) -> Result<CampaignStats> {
        self.run_with_progress(source, 0, |_| true)
    }

    /// Runs the campaign like [`RobustnessCampaign::run`], additionally
    /// invoking `progress` with the partial aggregates roughly every `every`
    /// scenarios (`0` never invokes it).
    ///
    /// The callback runs on the aggregator thread after a chunk has been
    /// folded in, so each snapshot it sees is a *prefix* of the final result
    /// in strict scenario order: totals are strictly monotone across calls,
    /// and the aggregates the completed run returns are bit-identical
    /// whether or not a callback was installed. Returning `false` cancels
    /// the campaign cooperatively — workers stop at their next scenario
    /// boundary and the run surfaces [`CoreError::Cancelled`].
    ///
    /// # Errors
    ///
    /// As [`RobustnessCampaign::run`], plus [`CoreError::Cancelled`] when
    /// the callback asked to stop.
    pub fn run_with_progress<S, F>(
        &self,
        source: &S,
        every: u64,
        mut progress: F,
    ) -> Result<CampaignStats>
    where
        S: ScenarioSource + ?Sized,
        F: FnMut(&CampaignStats) -> bool,
    {
        let total = source.total();
        let mut stats = CampaignStats::new(source);
        if total == 0 {
            return Ok(stats);
        }
        let families = source.families();
        if families == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "a campaign source with scenarios must declare at least one family"
                    .to_string(),
            });
        }
        let chunk_size = self.chunk_size;
        let chunk_count = total.div_ceil(chunk_size);
        let workers = self.effective_workers(total);
        let campaign_seed = self.seed;
        let lane_width = self.lane_width;

        let cursor = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        // Bounded channel: workers that run ahead of the aggregator block,
        // capping in-flight chunks (and therefore memory) at O(workers).
        let (sender, receiver) = sync_channel::<(u64, Result<Vec<ScenarioMetrics>>)>(2 * workers);

        let mut first_error: Option<CoreError> = None;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let sender = sender.clone();
                let cursor = &cursor;
                let stop = &stop;
                let fleet = &self.fleet;
                let cancel = &self.cancel;
                scope.spawn(move || {
                    // Lane width > 1 steps the chunk's scenarios through one
                    // lane-batched engine; width 1 keeps the scalar
                    // per-scenario engine. Both produce bit-identical chunk
                    // metrics.
                    let engine = if lane_width > 1 {
                        BatchCoSim::from_fleet(fleet, lane_width).map(|batch| {
                            WorkerEngine::Batched(batch, Vec::with_capacity(lane_width))
                        })
                    } else {
                        fleet.engine().map(|engine| WorkerEngine::Scalar(Box::new(engine)))
                    };
                    let mut engine = match engine {
                        Ok(engine) => engine,
                        Err(error) => {
                            // Attribute the failure to the chunk this worker
                            // would have run next.
                            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            let _ = sender.send((chunk, Err(error)));
                            return;
                        }
                    };
                    let mut metrics = RunMetrics::default();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                        if chunk >= chunk_count {
                            break;
                        }
                        let start = chunk * chunk_size;
                        let end = (start + chunk_size).min(total);
                        let mut results =
                            Vec::with_capacity(usize::try_from(end - start).unwrap_or(0));
                        let failure = run_chunk(
                            &mut engine,
                            &mut metrics,
                            source,
                            families,
                            campaign_seed,
                            start,
                            end,
                            cancel,
                            &mut results,
                        );
                        let payload = match failure {
                            None => Ok(results),
                            Some(error) => {
                                stop.store(true, Ordering::Relaxed);
                                Err(error)
                            }
                        };
                        // A failed send means the aggregator hung up (error
                        // path) — nothing left to do.
                        if sender.send((chunk, payload)).is_err() {
                            break;
                        }
                    }
                });
            }
            // The aggregator runs on this thread. Drop the template sender so
            // the channel disconnects once every worker is done.
            drop(sender);
            let mut pending: BTreeMap<u64, Result<Vec<ScenarioMetrics>>> = BTreeMap::new();
            let mut next_chunk = 0u64;
            let mut next_emit = if every > 0 { every } else { u64::MAX };
            'aggregate: while next_chunk < chunk_count {
                let result = match pending.remove(&next_chunk) {
                    Some(result) => result,
                    None => match receiver.recv() {
                        Ok((chunk, result)) if chunk == next_chunk => result,
                        Ok((chunk, result)) => {
                            // Out-of-order chunk: park it. The reorder buffer
                            // is bounded by the channel capacity, so this too
                            // is O(workers).
                            pending.insert(chunk, result);
                            continue;
                        }
                        Err(_) => {
                            // All workers exited without delivering the next
                            // chunk — only reachable on the error path.
                            if first_error.is_none() {
                                first_error = Some(CoreError::InvalidConfig {
                                    reason: "campaign workers exited early".to_string(),
                                });
                            }
                            break 'aggregate;
                        }
                    },
                };
                match result {
                    Ok(chunk_metrics) => {
                        // Strict scenario order: chunks ascend, and each
                        // chunk's metrics were produced in index order.
                        for metrics in &chunk_metrics {
                            stats.total += 1;
                            stats.families[metrics.family].absorb(metrics);
                        }
                        next_chunk += 1;
                        // Progress checkpoint: at most one emission per chunk
                        // (totals stay strictly monotone across snapshots),
                        // and only on in-order prefixes of the final result.
                        if stats.total >= next_emit && next_chunk < chunk_count {
                            while next_emit <= stats.total {
                                next_emit += every;
                            }
                            if !progress(&stats) {
                                first_error = Some(CoreError::Cancelled);
                                stop.store(true, Ordering::Relaxed);
                                break 'aggregate;
                            }
                        }
                    }
                    Err(error) => {
                        // First error in scenario order: chunks are consumed
                        // in ascending order, and the failing worker stopped
                        // at its first failing scenario.
                        first_error = Some(error);
                        stop.store(true, Ordering::Relaxed);
                        break 'aggregate;
                    }
                }
            }
            // Drain/close the channel so workers blocked on a full channel
            // wake up and exit before the scope joins them.
            drop(receiver);
        });

        match first_error {
            None => Ok(stats),
            Some(error) => Err(error),
        }
    }
}

/// One worker's simulation backend: the scalar reset-and-rerun engine, or
/// the lane-batched engine plus its reusable per-group scenario buffer.
enum WorkerEngine {
    Scalar(Box<CoSimulation>),
    Batched(BatchCoSim, Vec<CampaignScenario>),
}

/// Runs one claimed chunk (`start..end`) through the worker's engine,
/// pushing one [`ScenarioMetrics`] per scenario in index order. Returns the
/// first failure in scenario order (cancellation, invalid scenario
/// parameters, or an engine error), leaving `results` partial.
#[allow(clippy::too_many_arguments)]
fn run_chunk<S: ScenarioSource + ?Sized>(
    engine: &mut WorkerEngine,
    metrics: &mut RunMetrics,
    source: &S,
    families: usize,
    campaign_seed: u64,
    start: u64,
    end: u64,
    cancel: &Option<cps_sched::CancelToken>,
    results: &mut Vec<ScenarioMetrics>,
) -> Option<CoreError> {
    match engine {
        WorkerEngine::Scalar(engine) => {
            for index in start..end {
                // Scenario-boundary cancellation checkpoint: a fired
                // deadline token ends the campaign with the first cut
                // attributed in scenario order.
                if cancel.as_ref().is_some_and(|token| token.is_cancelled()) {
                    return Some(CoreError::Cancelled);
                }
                // A fresh default each time (Copy, stack-only): sources
                // never see a previous scenario's fields.
                let mut scenario = CampaignScenario::default();
                source.generate(index, SimRng::derive(campaign_seed, index), &mut scenario);
                match run_scenario(engine, families, &scenario, metrics) {
                    Ok(outcome) => results.push(outcome),
                    Err(error) => return Some(error),
                }
            }
            None
        }
        WorkerEngine::Batched(batch, lane_scenarios) => {
            let lanes = batch.lanes() as u64;
            let mut index = start;
            while index < end {
                let group_end = (index + lanes).min(end);
                batch.clear();
                lane_scenarios.clear();
                for i in index..group_end {
                    if cancel.as_ref().is_some_and(|token| token.is_cancelled()) {
                        return Some(CoreError::Cancelled);
                    }
                    let mut scenario = CampaignScenario::default();
                    source.generate(i, SimRng::derive(campaign_seed, i), &mut scenario);
                    if let Err(error) = validate_scenario(&scenario, families) {
                        return Some(error);
                    }
                    let lane = lane_scenarios.len();
                    if let Err(error) = batch.load_campaign_lane(lane, &scenario) {
                        return Some(error);
                    }
                    lane_scenarios.push(scenario);
                }
                if let Err(error) = batch.run_loaded() {
                    return Some(error);
                }
                for (lane, scenario) in lane_scenarios.iter().enumerate() {
                    batch.lane_metrics_into(lane, metrics);
                    results.push(ScenarioMetrics {
                        family: scenario.family,
                        settling: metrics.max_response_time(),
                        deadline_met: metrics.all_deadlines_met(),
                        peak: metrics.max_peak_norm(),
                        tt_share: metrics.tt_share(),
                    });
                }
                index = group_end;
            }
            None
        }
    }
}

/// The scenario-parameter validation both the scalar and the batched paths
/// apply, in the same order, before touching an engine.
fn validate_scenario(scenario: &CampaignScenario, families: usize) -> Result<()> {
    if scenario.family >= families {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "scenario family {} out of range (source declares {families} families)",
                scenario.family
            ),
        });
    }
    if !scenario.disturbance_scale.is_finite() || scenario.disturbance_scale < 0.0 {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "disturbance scale must be finite and non-negative, got {}",
                scenario.disturbance_scale
            ),
        });
    }
    if !scenario.duration.is_finite() || !(scenario.duration > 0.0) {
        return Err(CoreError::InvalidConfig {
            reason: format!("duration must be finite and positive, got {}", scenario.duration),
        });
    }
    Ok(())
}

/// Runs one generated scenario on a warm engine. Between the engine's and
/// the metrics' reused buffers, a warm call allocates nothing.
fn run_scenario(
    engine: &mut CoSimulation,
    families: usize,
    scenario: &CampaignScenario,
    metrics: &mut RunMetrics,
) -> Result<ScenarioMetrics> {
    validate_scenario(scenario, families)?;
    engine.reset()?;
    engine.set_threshold_scale(scenario.threshold_scale)?;
    engine.set_fault_model(scenario.fault)?;
    engine.set_degradation(scenario.degradation)?;
    engine.inject_disturbances_scaled(scenario.disturbance_scale)?;
    engine.run_metrics_into(scenario.duration, metrics)?;
    Ok(ScenarioMetrics {
        family: scenario.family,
        settling: metrics.max_response_time(),
        deadline_met: metrics.all_deadlines_met(),
        peak: metrics.max_peak_norm(),
        tt_share: metrics.tt_share(),
    })
}

/// The standard fault-intensity sweep source: one scenario family per frame
/// drop probability, `scenarios_per_intensity` randomised runs each. Every
/// run draws its disturbance scale uniformly from
/// [`RobustnessSweep::disturbance_range`] and seeds its fault/degradation
/// RNGs from the per-scenario seed, so the whole campaign is a pure function
/// of the campaign seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessSweep {
    /// One family per drop probability (the fault-intensity axis of the
    /// statistical model-checking report).
    pub drop_probabilities: Vec<f64>,
    /// Randomised scenarios per intensity.
    pub scenarios_per_intensity: u64,
    /// Simulated duration per scenario in seconds.
    pub duration: f64,
    /// Uniform range the per-scenario disturbance scale is drawn from.
    pub disturbance_range: (f64, f64),
    /// Optional Gilbert–Elliott burst channel applied at every intensity.
    pub burst: Option<GilbertElliott>,
    /// Payload-corruption probability applied at every intensity.
    pub corruption_probability: f64,
    /// Optional dynamic-segment background contention (max minislots).
    pub max_background_minislots: Option<usize>,
    /// Sensor-noise amplitude of the degradation layer (0 = no degradation
    /// unless a storm is configured).
    pub sensor_noise: f64,
    /// Optional mode-switch storm applied to every scenario.
    pub storm: Option<ModeSwitchStorm>,
}

impl RobustnessSweep {
    /// A drop-probability sweep with nominal disturbances and no extra
    /// fault/degradation features.
    pub fn new(drop_probabilities: Vec<f64>, scenarios_per_intensity: u64, duration: f64) -> Self {
        RobustnessSweep {
            drop_probabilities,
            scenarios_per_intensity,
            duration,
            disturbance_range: (1.0, 1.0),
            burst: None,
            corruption_probability: 0.0,
            max_background_minislots: None,
            sensor_noise: 0.0,
            storm: None,
        }
    }

    /// Returns the sweep drawing each scenario's disturbance scale uniformly
    /// from `[lo, hi]`.
    #[must_use]
    pub fn with_disturbance_range(mut self, lo: f64, hi: f64) -> Self {
        self.disturbance_range = (lo, hi);
        self
    }

    /// Returns the sweep with a Gilbert–Elliott burst channel at every
    /// intensity.
    #[must_use]
    pub fn with_burst(mut self, burst: GilbertElliott) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Returns the sweep with payload corruption at every intensity.
    #[must_use]
    pub fn with_corruption(mut self, corruption_probability: f64) -> Self {
        self.corruption_probability = corruption_probability;
        self
    }

    /// Returns the sweep with dynamic-segment background contention.
    #[must_use]
    pub fn with_dynamic_contention(mut self, max_background_minislots: usize) -> Self {
        self.max_background_minislots = Some(max_background_minislots);
        self
    }

    /// Returns the sweep with sensor noise on the runtime's mode decisions.
    #[must_use]
    pub fn with_sensor_noise(mut self, sensor_noise: f64) -> Self {
        self.sensor_noise = sensor_noise;
        self
    }

    /// Returns the sweep with a mode-switch storm in every scenario.
    #[must_use]
    pub fn with_storm(mut self, interval: f64, scale: f64) -> Self {
        self.storm = Some(ModeSwitchStorm { interval, scale });
        self
    }
}

impl ScenarioSource for RobustnessSweep {
    fn total(&self) -> u64 {
        self.drop_probabilities.len() as u64 * self.scenarios_per_intensity
    }

    fn families(&self) -> usize {
        self.drop_probabilities.len()
    }

    fn family_label(&self, family: usize) -> String {
        format!("drop p={:.3}", self.drop_probabilities[family])
    }

    fn generate(&self, index: u64, seed: u64, scenario: &mut CampaignScenario) {
        let family = (index / self.scenarios_per_intensity.max(1)) as usize;
        let drop_probability = self.drop_probabilities[family];
        let mut rng = SimRng::seeded(seed);
        let (lo, hi) = self.disturbance_range;
        scenario.family = family;
        scenario.disturbance_scale = lo + (hi - lo) * rng.next_unit();
        scenario.threshold_scale = 1.0;
        scenario.duration = self.duration;
        let mut fault = FaultModel::drops(rng.next_u64(), drop_probability)
            .with_corruption(self.corruption_probability);
        if let Some(burst) = self.burst {
            fault = fault.with_burst(burst);
        }
        if let Some(minislots) = self.max_background_minislots {
            fault = fault.with_dynamic_contention(minislots);
        }
        scenario.fault = Some(fault);
        scenario.degradation = (self.sensor_noise > 0.0 || self.storm.is_some()).then(|| {
            DegradationConfig {
                seed: rng.next_u64(),
                sensor_noise: self.sensor_noise,
                storm: self.storm,
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;
    use cps_flexray::FlexRayConfig;

    fn fleet() -> Arc<DesignedFleet> {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        Arc::new(
            DesignedFleet::new(apps, allocation, FlexRayConfig::paper_case_study()).unwrap(),
        )
    }

    #[test]
    fn nominal_campaign_settles_everywhere() {
        let campaign = RobustnessCampaign::new(fleet(), 7).with_workers(2);
        // 12 s horizon: the derived fleet's slowest app settles late (see
        // `case_study_cosim_meets_all_deadlines`).
        let sweep = RobustnessSweep::new(vec![0.0], 4, 12.0);
        let stats = campaign.run(&sweep).unwrap();
        assert_eq!(stats.total, 4);
        assert_eq!(stats.families.len(), 1);
        let family = &stats.families[0];
        assert_eq!(family.scenarios, 4);
        assert_eq!(family.settled, 4, "a fault-free campaign must settle");
        assert_eq!(family.deadlines_met, 4);
        assert!(family.settling_time.mean() > 0.0);
        assert!(family.tt_share.mean() > 0.0, "transients must use TT slots");
        let readout = stats.settling_probabilities(0.05);
        assert_eq!(readout[0].estimate, 1.0);
        assert_eq!(readout[0].upper, 1.0);
        assert!(readout[0].lower > 0.3, "4/4 successes bound P from below");
    }

    #[test]
    fn heavy_faults_degrade_the_settling_probability() {
        let campaign = RobustnessCampaign::new(fleet(), 21).with_workers(2);
        let sweep = RobustnessSweep::new(vec![0.0, 0.9], 3, 12.0).with_burst(GilbertElliott {
            degrade_probability: 0.3,
            recover_probability: 0.1,
            bad_drop_probability: 1.0,
        });
        let stats = campaign.run(&sweep).unwrap();
        let readout = stats.settling_probabilities(0.05);
        assert!(
            readout[1].successes < readout[0].successes
                || stats.families[1].settling_time.mean()
                    > stats.families[0].settling_time.mean(),
            "heavy bursty losses must hurt settling: {readout:?}"
        );
        assert_eq!(stats.families[1].scenarios, 3);
    }

    #[test]
    fn empty_and_invalid_sources() {
        let campaign = RobustnessCampaign::new(fleet(), 1);
        let empty = RobustnessSweep::new(vec![], 10, 1.0);
        let stats = campaign.run(&empty).unwrap();
        assert_eq!(stats.total, 0);
        assert!(stats.families.is_empty());

        struct Bad;
        impl ScenarioSource for Bad {
            fn total(&self) -> u64 {
                3
            }
            fn families(&self) -> usize {
                1
            }
            fn family_label(&self, _family: usize) -> String {
                "bad".to_string()
            }
            fn generate(&self, _index: u64, _seed: u64, scenario: &mut CampaignScenario) {
                scenario.duration = -1.0;
            }
        }
        assert!(campaign.run(&Bad).is_err());

        struct NoFamilies;
        impl ScenarioSource for NoFamilies {
            fn total(&self) -> u64 {
                1
            }
            fn families(&self) -> usize {
                0
            }
            fn family_label(&self, _family: usize) -> String {
                unreachable!()
            }
            fn generate(&self, _index: u64, _seed: u64, _scenario: &mut CampaignScenario) {}
        }
        assert!(campaign.run(&NoFamilies).is_err());
    }

    #[test]
    fn cancellation_stops_the_campaign_at_a_scenario_boundary() {
        let token = cps_sched::CancelToken::new();
        token.cancel();
        let campaign = RobustnessCampaign::new(fleet(), 5)
            .with_workers(2)
            .with_cancel_token(Some(token.clone()));
        let sweep = RobustnessSweep::new(vec![0.0], 8, 1.0);
        let err = campaign.run(&sweep).unwrap_err();
        assert!(matches!(err, CoreError::Cancelled), "unexpected error: {err}");
        // An un-cancelled token leaves the aggregates bit-identical to a
        // token-free run.
        let fresh = cps_sched::CancelToken::new();
        let with_token = RobustnessCampaign::new(fleet(), 5)
            .with_workers(2)
            .with_cancel_token(Some(fresh))
            .run(&sweep)
            .unwrap();
        let without = RobustnessCampaign::new(fleet(), 5).with_workers(2).run(&sweep).unwrap();
        assert_eq!(with_token, without);
    }

    #[test]
    fn lane_width_does_not_change_the_result() {
        let base = RobustnessCampaign::new(fleet(), 17).with_workers(2).with_chunk_size(5);
        // Faults + noise + storms force lane divergence (hold-last-command
        // and mode switches at different steps per lane); chunk size 5 with
        // width 4 exercises ragged remainder groups.
        let sweep = RobustnessSweep::new(vec![0.1, 0.5], 6, 1.0)
            .with_disturbance_range(0.8, 1.6)
            .with_sensor_noise(0.01)
            .with_storm(0.3, 0.7);
        let scalar = base.clone().with_lane_width(1).run(&sweep).unwrap();
        for lanes in [2, 3, 4, 8] {
            let batched = base.clone().with_lane_width(lanes).run(&sweep).unwrap();
            assert_eq!(scalar, batched, "lane width {lanes} changed the campaign result");
        }
    }

    #[test]
    fn chunk_geometry_does_not_change_the_result() {
        let base = RobustnessCampaign::new(fleet(), 99).with_workers(2);
        let sweep = RobustnessSweep::new(vec![0.0, 0.3], 6, 1.0).with_sensor_noise(0.01);
        let coarse = base.clone().with_chunk_size(64).run(&sweep).unwrap();
        let fine = base.clone().with_chunk_size(1).run(&sweep).unwrap();
        let medium = base.with_chunk_size(5).run(&sweep).unwrap();
        assert_eq!(coarse, fine);
        assert_eq!(coarse, medium);
    }
}
