//! Error type for the co-design core.

use std::fmt;

/// Errors reported by the co-design flow.
#[derive(Debug)]
pub enum CoreError {
    /// A control-theory operation failed.
    Control(cps_control::ControlError),
    /// A schedulability-analysis operation failed.
    Sched(cps_sched::SchedError),
    /// A bus-model operation failed.
    FlexRay(cps_flexray::FlexRayError),
    /// A configuration value specific to the co-design layer is invalid.
    InvalidConfig {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// A cooperative cancellation token fired mid-pipeline (deadline expiry,
    /// shutdown): the operation was abandoned at a checkpoint and produced no
    /// result. Degraded-but-complete outcomes (e.g. an uncertified incumbent
    /// allocation) are *not* reported this way — only a cut with nothing to
    /// return is.
    Cancelled,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Control(e) => write!(f, "control-design failure: {e}"),
            CoreError::Sched(e) => write!(f, "schedulability-analysis failure: {e}"),
            CoreError::FlexRay(e) => write!(f, "bus-model failure: {e}"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::Cancelled => write!(f, "operation cancelled before completion"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Control(e) => Some(e),
            CoreError::Sched(e) => Some(e),
            CoreError::FlexRay(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
            CoreError::Cancelled => None,
        }
    }
}

impl From<cps_control::ControlError> for CoreError {
    fn from(e: cps_control::ControlError) -> Self {
        CoreError::Control(e)
    }
}

impl From<cps_sched::SchedError> for CoreError {
    fn from(e: cps_sched::SchedError) -> Self {
        CoreError::Sched(e)
    }
}

impl From<cps_flexray::FlexRayError> for CoreError {
    fn from(e: cps_flexray::FlexRayError) -> Self {
        CoreError::FlexRay(e)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e: CoreError = cps_sched::SchedError::InvalidParameter { reason: "x".into() }.into();
        assert!(e.to_string().contains("schedulability"));
        assert!(e.source().is_some());
        let e: CoreError =
            cps_flexray::FlexRayError::InvalidConfig { reason: "y".into() }.into();
        assert!(e.to_string().contains("bus-model"));
        let e: CoreError =
            cps_control::ControlError::InvalidModel { reason: "z".into() }.into();
        assert!(e.to_string().contains("control-design"));
        let e = CoreError::InvalidConfig { reason: "bad".into() };
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e = CoreError::Cancelled;
        assert!(e.to_string().contains("cancelled"));
        assert!(e.source().is_none());
    }
}
