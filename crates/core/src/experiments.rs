//! One entry point per table/figure of the paper's evaluation, used by the
//! examples, the Criterion benches and EXPERIMENTS.md.

use crate::application::{ApplicationSpec, ControlApplication, ControllerSpec};
use crate::case_study;
use crate::characterize::{characterize_application, fit_non_monotonic};
use crate::cosim::{CoSimTrace, CoSimulation};
use crate::error::Result;
use cps_control::{plants, DwellWaitCurve};
use cps_flexray::FlexRayConfig;
use cps_sched::{AppTimingParams, DwellTimeModel, NonMonotonicModel, SimpleMonotonicModel};
use std::fmt::Write as _;

/// Builds the servo-rig application used for Figures 2 and 3 (the simulated
/// substitute for the paper's experimental setup).
///
/// # Errors
///
/// Propagates controller-design failures.
pub fn servo_rig_application() -> Result<ControlApplication> {
    ControlApplication::design(ApplicationSpec {
        name: "servo-rig".to_string(),
        plant: plants::servo_rig_upright(),
        period: case_study::CASE_STUDY_PERIOD,
        et_delay: case_study::CASE_STUDY_PERIOD,
        tt_delay: case_study::CASE_STUDY_TT_DELAY,
        threshold: case_study::CASE_STUDY_THRESHOLD,
        disturbance: vec![45.0_f64.to_radians(), 0.0],
        deadline: 8.0,
        inter_arrival: 20.0,
        controllers: ControllerSpec::PolePlacement {
            et_poles: vec![-0.7, -0.8, -40.0],
            tt_poles: vec![-6.0, -8.0, -40.0],
        },
        input_limit: Some(plants::SERVO_RIG_TORQUE_LIMIT),
    })
}

/// Experiment E1 (Figure 3): the measured dwell-time / wait-time relation of
/// the servo rig.
///
/// # Errors
///
/// Propagates design and simulation failures.
pub fn figure3_dwell_wait_curve() -> Result<DwellWaitCurve> {
    let app = servo_rig_application()?;
    characterize_application(&app)
}

/// Data of experiment E2 (Figure 4): the measured curve plus the three
/// analytical models evaluated on a common wait-time grid.
#[derive(Debug, Clone)]
pub struct Figure4Data {
    /// Wait-time grid in seconds.
    pub wait_times: Vec<f64>,
    /// Measured dwell times.
    pub measured: Vec<f64>,
    /// The paper's two-segment non-monotonic model.
    pub non_monotonic: Vec<f64>,
    /// The conservative monotonic upper bound.
    pub conservative: Vec<f64>,
    /// The unsafe simple monotonic model of earlier work.
    pub simple: Vec<f64>,
}

/// Experiment E2 (Figure 4): fits the three analytical dwell-time models to
/// the servo-rig characterisation.
///
/// # Errors
///
/// Propagates characterisation and fitting failures.
pub fn figure4_models() -> Result<Figure4Data> {
    let curve = figure3_dwell_wait_curve()?;
    let (xi_tt, xi_et, xi_m, k_p) = fit_non_monotonic(&curve)?;
    let non_monotonic = NonMonotonicModel::new(xi_tt, xi_m, k_p, xi_et)
        .map_err(crate::error::CoreError::Sched)?;
    let conservative = non_monotonic.conservative_envelope();
    let simple =
        SimpleMonotonicModel::new(xi_tt, xi_et).map_err(crate::error::CoreError::Sched)?;
    let wait_times: Vec<f64> = curve.points.iter().map(|p| p.wait_time).collect();
    Ok(Figure4Data {
        measured: curve.points.iter().map(|p| p.dwell_time).collect(),
        non_monotonic: wait_times.iter().map(|&w| non_monotonic.dwell(w)).collect(),
        conservative: wait_times.iter().map(|&w| conservative.dwell(w)).collect(),
        simple: wait_times.iter().map(|&w| simple.dwell(w)).collect(),
        wait_times,
    })
}

/// Experiment E3a (Table I, published values).
pub fn table1_published() -> Vec<AppTimingParams> {
    case_study::paper_table1()
}

/// Experiment E3b (Table I, derived end-to-end from synthetic plants).
///
/// # Errors
///
/// Propagates design and characterisation failures.
pub fn table1_derived() -> Result<Vec<AppTimingParams>> {
    let fleet = case_study::derived_fleet()?;
    case_study::derive_table(&fleet)
}

/// Experiment E4 (Section V headline): slot allocation with both models on
/// the published Table I.
///
/// # Errors
///
/// Propagates allocation failures.
pub fn slot_allocation_comparison() -> Result<case_study::CaseStudyOutcome> {
    case_study::run_slot_allocation(&case_study::paper_table1())
}

/// Experiment E5 (Figure 5): co-simulation of the derived fleet over the
/// FlexRay bus with all disturbances applied at t = 0.
///
/// # Errors
///
/// Propagates design, allocation and simulation failures.
pub fn figure5_cosimulation(duration: f64) -> Result<CoSimTrace> {
    let fleet = case_study::derived_fleet()?;
    let table = case_study::derive_table(&fleet)?;
    let allocation = cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default())?;
    let mut cosim = CoSimulation::new(fleet, &allocation, FlexRayConfig::paper_case_study())?;
    cosim.inject_disturbances()?;
    cosim.run(duration)
}

/// Renders a Table-I-style parameter set as a plain-text table.
pub fn render_table(rows: &[AppTimingParams]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "application", "r", "xi_d", "xi_tt", "xi_et", "xi_m", "k_p", "xi'_m"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            row.name,
            row.inter_arrival,
            row.deadline,
            row.xi_tt,
            row.xi_et,
            row.xi_m,
            row.k_p,
            row.xi_prime_m
        );
    }
    out
}

/// Renders a dwell/wait curve as an ASCII listing (wait, dwell) suitable for
/// plotting or diffing against the paper's Figure 3.
pub fn render_curve(curve: &DwellWaitCurve, stride: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>10} {:>10}", "k_wait [s]", "k_dw [s]");
    for point in curve.points.iter().step_by(stride.max(1)) {
        let _ = writeln!(out, "{:>10.2} {:>10.2}", point.wait_time, point.dwell_time);
    }
    let _ = writeln!(
        out,
        "xi_tt = {:.2} s, xi_et = {:.2} s, xi_m = {:.2} s at k_p = {:.2} s",
        curve.xi_tt,
        curve.xi_et,
        curve.max_dwell(),
        curve.peak_wait()
    );
    out
}

/// Renders the slot-allocation comparison (experiment E4).
pub fn render_allocation(outcome: &case_study::CaseStudyOutcome, apps: &[AppTimingParams]) -> String {
    let mut out = String::new();
    let describe = |allocation: &cps_sched::SlotAllocation| -> String {
        allocation
            .slots
            .iter()
            .enumerate()
            .map(|(slot, members)| {
                let names: Vec<&str> =
                    members.iter().map(|&index| apps[index].name.as_str()).collect();
                format!("S{} = {{{}}}", slot + 1, names.join(", "))
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(
        out,
        "non-monotonic model : {} TT slots ({})",
        outcome.non_monotonic_slots,
        describe(&outcome.non_monotonic)
    );
    let _ = writeln!(
        out,
        "conservative model  : {} TT slots ({})",
        outcome.monotonic_slots,
        describe(&outcome.monotonic)
    );
    let _ = writeln!(
        out,
        "extra resource for the monotonic model: {:.0} %",
        outcome.overhead_fraction * 100.0
    );
    out
}

/// Renders the per-application outcome of the co-simulation (experiment E5).
pub fn render_cosim(trace: &CoSimTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>10} {:>10} {:>10}",
        "application", "response [s]", "deadline", "met", "TT time"
    );
    for app in &trace.apps {
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>10.2} {:>10} {:>10.2}",
            app.name,
            app.response_time.map(|t| format!("{t:.2}")).unwrap_or_else(|| "-".to_string()),
            app.deadline,
            if app.deadline_met() { "yes" } else { "NO" },
            app.tt_time(trace.period)
        );
    }
    let _ = writeln!(
        out,
        "bus: {} static tx, {} wasted static slots, {} dynamic tx, {} deferred",
        trace.bus_statistics.static_transmissions,
        trace.bus_statistics.wasted_static_slots,
        trace.bus_statistics.dynamic_transmissions,
        trace.bus_statistics.deferred_dynamic_transmissions
    );
    out
}

/// Checks the conservative-model domination property used in Figure 4: the
/// conservative curve must dominate the non-monotonic model, which must
/// dominate the measurement; the simple model must under-estimate somewhere.
pub fn figure4_orderings_hold(data: &Figure4Data) -> bool {
    let conservative_dominates = data
        .non_monotonic
        .iter()
        .zip(&data.conservative)
        .all(|(nm, cm)| cm + 1e-9 >= *nm);
    let model_dominates_measurement = data
        .measured
        .iter()
        .zip(&data.non_monotonic)
        .all(|(measured, nm)| nm + 1e-6 >= *measured);
    let simple_underestimates = data
        .measured
        .iter()
        .zip(&data.simple)
        .any(|(measured, simple)| *simple + 1e-9 < *measured);
    conservative_dominates && model_dominates_measurement && simple_underestimates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_curve_has_paper_shape() {
        let curve = figure3_dwell_wait_curve().unwrap();
        assert!(curve.is_non_monotonic());
        assert!(curve.max_dwell() > curve.xi_tt);
        let text = render_curve(&curve, 10);
        assert!(text.contains("k_wait"));
        assert!(text.contains("xi_tt"));
    }

    #[test]
    fn figure4_orderings() {
        let data = figure4_models().unwrap();
        assert!(figure4_orderings_hold(&data));
        assert_eq!(data.wait_times.len(), data.measured.len());
        assert_eq!(data.wait_times.len(), data.non_monotonic.len());
    }

    #[test]
    fn table_renderings_contain_all_rows() {
        let table = table1_published();
        let text = render_table(&table);
        for row in &table {
            assert!(text.contains(&row.name));
        }
    }

    #[test]
    fn allocation_rendering_mentions_counts() {
        let outcome = slot_allocation_comparison().unwrap();
        let text = render_allocation(&outcome, &table1_published());
        assert!(text.contains("3 TT slots"));
        assert!(text.contains("5 TT slots"));
        assert!(text.contains("67 %"));
    }
}
