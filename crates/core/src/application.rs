//! A fully specified distributed control application: plant, controllers for
//! both communication modes, control requirement and disturbance model.

use crate::error::{CoreError, Result};
use cps_control::{
    design_by_pole_placement, design_lqr_with, ContinuousStateSpace, DelayedLtiSystem,
    DesignWorkspace, KernelMatrices, LqrWeights, PlantSimulator, SaturatedSwitchedModel,
    StateFeedbackController, StepKernel,
};
use std::sync::Arc;

/// How the ET/TT state-feedback controllers of an application are designed.
#[derive(Debug, Clone)]
pub enum ControllerSpec {
    /// LQR with separate weights for the ET and the TT loop.
    Lqr {
        /// Weights of the (detuned) event-triggered design.
        et_weights: LqrWeights,
        /// Weights of the (aggressive) time-triggered design.
        tt_weights: LqrWeights,
    },
    /// Pole placement with continuous-time target poles per mode (one pole
    /// per augmented state).
    PolePlacement {
        /// Desired continuous-time poles of the ET loop.
        et_poles: Vec<f64>,
        /// Desired continuous-time poles of the TT loop.
        tt_poles: Vec<f64>,
    },
}

/// The full description of one control application in the case study.
#[derive(Debug, Clone)]
pub struct ApplicationSpec {
    /// Application name (e.g. `"C3"`).
    pub name: String,
    /// Continuous-time plant model.
    pub plant: ContinuousStateSpace,
    /// Sampling period `h` in seconds.
    pub period: f64,
    /// Worst-case sensor-to-actuator delay over ET communication.
    pub et_delay: f64,
    /// Deterministic sensor-to-actuator delay over TT communication.
    pub tt_delay: f64,
    /// Switching threshold `E_th` on the plant-state norm.
    pub threshold: f64,
    /// Disturbance applied to the plant state (state jump).
    pub disturbance: Vec<f64>,
    /// Deadline (desired response time) ξᵈ in seconds.
    pub deadline: f64,
    /// Minimum inter-arrival time of disturbances, `r`, in seconds.
    pub inter_arrival: f64,
    /// Controller synthesis specification.
    pub controllers: ControllerSpec,
    /// Optional actuator magnitude limit (saturation), used both for the
    /// dwell/wait characterisation and the co-simulation.
    pub input_limit: Option<f64>,
}

/// A built application: the spec plus all derived design artefacts,
/// including the precompiled fused closed-loop matrices every simulation
/// kernel of this design shares (an `Arc`, so clones of the application and
/// all kernels spawned from it reference one compilation).
#[derive(Debug, Clone)]
pub struct ControlApplication {
    spec: ApplicationSpec,
    et_system: DelayedLtiSystem,
    tt_system: DelayedLtiSystem,
    et_controller: StateFeedbackController,
    tt_controller: StateFeedbackController,
    kernel_matrices: Arc<KernelMatrices>,
}

impl ControlApplication {
    /// Designs the ET and TT controllers for the given specification.
    ///
    /// This is the one-application entry point of the fleet design pipeline:
    /// it routes through [`crate::FleetDesigner`], so the synthesis runs on
    /// the same workspace-threaded path as a full fleet design (and is
    /// bit-identical to it).
    ///
    /// # Examples
    ///
    /// ```
    /// use cps_control::{plants, LqrWeights};
    /// use cps_core::{ApplicationSpec, ControlApplication, ControllerSpec};
    ///
    /// let app = ControlApplication::design(ApplicationSpec {
    ///     name: "dc-motor".to_string(),
    ///     plant: plants::dc_motor_speed(),
    ///     period: 0.02,
    ///     et_delay: 0.02,
    ///     tt_delay: 0.0007,
    ///     threshold: 0.1,
    ///     disturbance: vec![0.0, 1.0],
    ///     deadline: 6.0,
    ///     inter_arrival: 20.0,
    ///     controllers: ControllerSpec::Lqr {
    ///         et_weights: LqrWeights::identity_with_input_weight(2, 1.0),
    ///         tt_weights: LqrWeights::identity_with_input_weight(2, 0.01),
    ///     },
    ///     input_limit: None,
    /// })?;
    /// assert_eq!(app.name(), "dc-motor");
    /// // The designed artifacts are ready for characterisation and
    /// // simulation: both controllers exist and the fused step-kernel
    /// // matrices are compiled once, shared by every kernel spawned here.
    /// let kernel = app.kernel()?;
    /// assert_eq!(kernel.state_norm(), 0.0);
    /// # Ok::<(), cps_core::CoreError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if the specification is inconsistent
    ///   (empty disturbance, non-positive deadline, deadline exceeding the
    ///   disturbance inter-arrival time, ...).
    /// * Control-design failures are propagated.
    pub fn design(spec: ApplicationSpec) -> Result<Self> {
        crate::designer::FleetDesigner::sequential().design_one(spec)
    }

    /// [`ControlApplication::design`] with a caller-provided
    /// [`DesignWorkspace`]: the shape the fleet designer threads through its
    /// workers, sharing discretisation and Riccati temporaries across every
    /// application of a fleet. Produces exactly the artifacts of
    /// [`ControlApplication::design`].
    ///
    /// # Errors
    ///
    /// As [`ControlApplication::design`].
    pub fn design_with(spec: ApplicationSpec, workspace: &mut DesignWorkspace) -> Result<Self> {
        if spec.disturbance.len() != spec.plant.order() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "{}: disturbance has {} entries but the plant has {} states",
                    spec.name,
                    spec.disturbance.len(),
                    spec.plant.order()
                ),
            });
        }
        if !(spec.deadline > 0.0) || !(spec.inter_arrival > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("{}: deadline and inter-arrival time must be positive", spec.name),
            });
        }
        if spec.deadline > spec.inter_arrival {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "{}: the paper assumes deadline <= disturbance inter-arrival time",
                    spec.name
                ),
            });
        }
        if !(spec.threshold > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("{}: the threshold E_th must be positive", spec.name),
            });
        }
        if let Some(limit) = spec.input_limit {
            if !(limit > 0.0) {
                return Err(CoreError::InvalidConfig {
                    reason: format!("{}: the input limit must be positive", spec.name),
                });
            }
        }
        let et_system =
            DelayedLtiSystem::from_continuous_with(&spec.plant, spec.period, spec.et_delay, workspace)?;
        let tt_system =
            DelayedLtiSystem::from_continuous_with(&spec.plant, spec.period, spec.tt_delay, workspace)?;
        let (et_controller, tt_controller) = match &spec.controllers {
            ControllerSpec::Lqr { et_weights, tt_weights } => (
                design_lqr_with(&et_system, et_weights, workspace)?,
                design_lqr_with(&tt_system, tt_weights, workspace)?,
            ),
            ControllerSpec::PolePlacement { et_poles, tt_poles } => (
                design_by_pole_placement(&et_system, et_poles)?,
                design_by_pole_placement(&tt_system, tt_poles)?,
            ),
        };
        let kernel_matrices = Arc::new(KernelMatrices::compile(
            &et_system,
            &tt_system,
            &et_controller,
            &tt_controller,
        )?);
        Ok(ControlApplication {
            spec,
            et_system,
            tt_system,
            et_controller,
            tt_controller,
            kernel_matrices,
        })
    }

    /// The application's specification.
    pub fn spec(&self) -> &ApplicationSpec {
        &self.spec
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The ET-mode plant model.
    pub fn et_system(&self) -> &DelayedLtiSystem {
        &self.et_system
    }

    /// The TT-mode plant model.
    pub fn tt_system(&self) -> &DelayedLtiSystem {
        &self.tt_system
    }

    /// The ET-mode controller.
    pub fn et_controller(&self) -> &StateFeedbackController {
        &self.et_controller
    }

    /// The TT-mode controller.
    pub fn tt_controller(&self) -> &StateFeedbackController {
        &self.tt_controller
    }

    /// The switched, saturated rig model used for the dwell/wait
    /// characterisation when an input limit is configured.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn saturated_model(&self) -> Result<Option<SaturatedSwitchedModel>> {
        match self.spec.input_limit {
            None => Ok(None),
            Some(limit) => Ok(Some(SaturatedSwitchedModel::new(
                self.et_system.clone(),
                self.tt_system.clone(),
                self.et_controller.gain().clone(),
                self.tt_controller.gain().clone(),
                limit,
            )?)),
        }
    }

    /// A fresh closed-loop simulator for this application (state at the
    /// origin), used when per-step [`cps_control::SimSample`] records are
    /// wanted.
    ///
    /// # Errors
    ///
    /// Propagates simulator-construction failures.
    pub fn simulator(&self) -> Result<PlantSimulator> {
        Ok(PlantSimulator::new(
            self.et_system.clone(),
            self.tt_system.clone(),
            self.et_controller.clone(),
            self.tt_controller.clone(),
        )?)
    }

    /// The precompiled fused closed-loop matrices of this design, shared by
    /// every kernel spawned from it.
    pub fn kernel_matrices(&self) -> &Arc<KernelMatrices> {
        &self.kernel_matrices
    }

    /// A fresh allocation-free step kernel for this application (state at
    /// the origin) — the handle the co-simulation engine and the scenario
    /// batch runner drive. The fused matrices were compiled once at design
    /// time and are shared, so this costs only two state buffers.
    ///
    /// # Errors
    ///
    /// Infallible since the matrices are precompiled; the `Result` is kept
    /// for interface stability.
    pub fn kernel(&self) -> Result<StepKernel> {
        Ok(self.kernel_matrices.kernel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_control::plants;

    fn rig_spec() -> ApplicationSpec {
        ApplicationSpec {
            name: "servo".to_string(),
            plant: plants::servo_rig_upright(),
            period: 0.02,
            et_delay: 0.02,
            tt_delay: 0.0007,
            threshold: 0.1,
            disturbance: vec![45.0_f64.to_radians(), 0.0],
            deadline: 4.0,
            inter_arrival: 10.0,
            controllers: ControllerSpec::PolePlacement {
                et_poles: vec![-0.7, -0.8, -40.0],
                tt_poles: vec![-6.0, -8.0, -40.0],
            },
            input_limit: Some(plants::SERVO_RIG_TORQUE_LIMIT),
        }
    }

    #[test]
    fn design_builds_all_artifacts() {
        let app = ControlApplication::design(rig_spec()).unwrap();
        assert_eq!(app.name(), "servo");
        assert_eq!(app.et_controller().gain().shape(), (1, 3));
        assert_eq!(app.tt_controller().gain().shape(), (1, 3));
        assert!(app.saturated_model().unwrap().is_some());
        assert!(app.simulator().is_ok());
        assert!((app.et_system().delay() - 0.02).abs() < 1e-12);
        assert!((app.tt_system().delay() - 0.0007).abs() < 1e-12);
    }

    #[test]
    fn lqr_spec_also_works() {
        let mut spec = rig_spec();
        spec.plant = plants::dc_motor_speed();
        spec.controllers = ControllerSpec::Lqr {
            et_weights: LqrWeights::identity_with_input_weight(2, 1.0),
            tt_weights: LqrWeights::identity_with_input_weight(2, 0.01),
        };
        spec.input_limit = None;
        let app = ControlApplication::design(spec).unwrap();
        assert!(app.saturated_model().unwrap().is_none());
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        let mut spec = rig_spec();
        spec.disturbance = vec![0.1];
        assert!(ControlApplication::design(spec).is_err());

        let mut spec = rig_spec();
        spec.deadline = -1.0;
        assert!(ControlApplication::design(spec).is_err());

        let mut spec = rig_spec();
        spec.deadline = 20.0; // exceeds inter-arrival
        assert!(ControlApplication::design(spec).is_err());

        let mut spec = rig_spec();
        spec.threshold = 0.0;
        assert!(ControlApplication::design(spec).is_err());

        let mut spec = rig_spec();
        spec.input_limit = Some(0.0);
        assert!(ControlApplication::design(spec).is_err());
    }
}
