//! Plant / runtime / bus co-simulation — the engine behind Figure 5.
//!
//! Every sampling period the engine reads the plant-state norms, lets the
//! dynamic resource-allocation runtime decide which application may use its
//! TT slot (Figure 1), steps each closed loop with the controller and delay
//! model of its granted communication mode, and mirrors the resulting
//! traffic onto a cycle-accurate FlexRay bus to collect realistic latency
//! and slot-usage statistics.

use crate::application::ControlApplication;
use crate::error::{CoreError, Result};
use crate::fleet::DesignedFleet;
use crate::runtime::AllocationRuntime;
use cps_control::{CommunicationMode, StepKernel};
use cps_flexray::{FlexRayBus, FlexRayConfig, Frame, LatencyStats, Segment};
use cps_sched::SlotAllocation;
use std::sync::Arc;

/// One record of one application's trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Simulation time at the start of the period.
    pub time: f64,
    /// Plant-state norm ‖x‖ at that time.
    pub norm: f64,
    /// Communication mode used during the period.
    pub mode: CommunicationMode,
}

/// Trajectory and verdict of one application in the co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AppTrace {
    /// Application name.
    pub name: String,
    /// Sampled trajectory.
    pub points: Vec<TracePoint>,
    /// Deadline (desired response time) of the application.
    pub deadline: f64,
    /// Measured response time: the first time from which the norm stays at or
    /// below the threshold (None if it never settles within the simulation).
    pub response_time: Option<f64>,
}

impl AppTrace {
    /// Returns `true` if the measured response time meets the deadline.
    pub fn deadline_met(&self) -> bool {
        self.response_time.map(|t| t <= self.deadline).unwrap_or(false)
    }

    /// Total time the application spent on TT communication.
    pub fn tt_time(&self, period: f64) -> f64 {
        self.points.iter().filter(|p| p.mode == CommunicationMode::TimeTriggered).count() as f64
            * period
    }
}

/// The complete result of a co-simulation run.
#[derive(Debug, Clone)]
pub struct CoSimTrace {
    /// One trace per application, in the order the applications were given.
    pub apps: Vec<AppTrace>,
    /// Slot occupancy per period: `occupancy[k][slot]` is the application
    /// index holding the slot during period `k`, if any.
    pub slot_occupancy: Vec<Vec<Option<usize>>>,
    /// Sampling period of the co-simulation.
    pub period: f64,
    /// FlexRay bus usage statistics accumulated over the run.
    pub bus_statistics: cps_flexray::BusStatistics,
    /// Observed bus latency statistics per application.
    pub bus_latencies: Vec<LatencyStats>,
}

impl CoSimTrace {
    /// Returns `true` if every application met its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.apps.iter().all(AppTrace::deadline_met)
    }
}

/// Frame size (in payload words) of every application's control message.
const CONTROL_FRAME_PAYLOAD: usize = 2;

/// Registers one bus frame per application (frame id = application index
/// plus one). Every control signal starts in the dynamic segment and is
/// moved into its TT slot on demand; used by engine construction *and* by
/// per-scenario bus rebuilds, so an overridden-then-restored bus is
/// registered identically to the original.
fn register_fleet_frames(bus: &mut FlexRayBus, apps: &[ControlApplication]) -> Result<()> {
    for (index, app) in apps.iter().enumerate() {
        bus.register_frame(Frame::dynamic(index as u32 + 1, app.name(), CONTROL_FRAME_PAYLOAD)?)?;
    }
    Ok(())
}

/// The co-simulation engine.
///
/// The engine is the *mutable* half of a fleet: it shares the immutable
/// [`DesignedFleet`] (designed controllers, fused kernel matrices, bus/slot
/// configuration) through an [`Arc`] and owns only scratch state — kernel
/// state buffers, runtime phases, the bus, and the per-period norm/mode
/// buffers. Each application's closed loop is stepped by a precompiled,
/// allocation-free [`StepKernel`]; [`CoSimulation::reset`] rewinds
/// everything to time zero without reconstruction, so repeated runs — the
/// fig5 bench, Monte-Carlo disturbance sweeps, fleet dimensioning — pay the
/// design cost once, and parallel scenario workers spin up for the price of
/// a handful of buffers ([`DesignedFleet::engine`]).
#[derive(Debug)]
pub struct CoSimulation {
    fleet: Arc<DesignedFleet>,
    kernels: Vec<StepKernel>,
    runtime: AllocationRuntime,
    bus: FlexRayBus,
    /// Bus configuration the engine currently runs on (the fleet's design
    /// unless overridden by [`CoSimulation::set_bus_config`]).
    bus_config: FlexRayConfig,
    period: f64,
    threshold_scale: f64,
    /// Scratch: plant-state norms of the current period.
    norms: Vec<f64>,
    /// Scratch: communication modes granted for the current period.
    modes: Vec<CommunicationMode>,
    /// Scratch: per-app slot assignment staged by [`CoSimulation::set_allocation`].
    slot_scratch: Vec<Option<usize>>,
}

impl CoSimulation {
    /// Builds the engine from designed applications and an offline slot
    /// allocation (application order must match the allocation's indices).
    ///
    /// Convenience for [`DesignedFleet::new`] + [`DesignedFleet::engine`];
    /// use the two-step form when several engines should share one design.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if the applications use different
    ///   sampling periods, the allocation references unknown applications, or
    ///   the bus does not offer enough static slots.
    pub fn new(
        apps: Vec<ControlApplication>,
        allocation: &SlotAllocation,
        bus_config: FlexRayConfig,
    ) -> Result<Self> {
        let fleet = Arc::new(DesignedFleet::new(apps, allocation.clone(), bus_config)?);
        CoSimulation::from_fleet(fleet)
    }

    /// Builds an engine over a shared fleet design: only the mutable scratch
    /// (kernel state buffers, runtime, bus) is constructed here.
    ///
    /// # Errors
    ///
    /// Propagates bus-construction failures.
    pub fn from_fleet(fleet: Arc<DesignedFleet>) -> Result<Self> {
        let mut kernels = Vec::with_capacity(fleet.app_count());
        let mut bus = FlexRayBus::new(fleet.bus_config())?;
        register_fleet_frames(&mut bus, fleet.apps())?;
        for app in fleet.apps() {
            kernels.push(app.kernel()?);
        }
        let runtime = AllocationRuntime::new(fleet.runtime_apps().to_vec(), fleet.slot_count())?;
        let app_count = fleet.app_count();
        let period = fleet.period();
        let bus_config = fleet.bus_config();
        Ok(CoSimulation {
            fleet,
            kernels,
            runtime,
            bus,
            bus_config,
            period,
            threshold_scale: 1.0,
            norms: vec![0.0; app_count],
            modes: Vec::with_capacity(app_count),
            slot_scratch: vec![None; app_count],
        })
    }

    /// The shared fleet design this engine runs on.
    pub fn fleet(&self) -> &Arc<DesignedFleet> {
        &self.fleet
    }

    /// Replaces the engine's slot map with `allocation` — the primitive
    /// behind slot-allocation sweep scenarios. All runtime phases and slot
    /// grants are cleared (call after [`CoSimulation::reset`], before
    /// injecting disturbances); the designed thresholds and the configured
    /// threshold scale are preserved.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the allocation needs more
    /// static slots than the bus offers.
    pub fn set_allocation(&mut self, allocation: &SlotAllocation) -> Result<()> {
        let slot_count = allocation.slot_count();
        if slot_count > self.bus_config.static_slot_count {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "allocation needs {slot_count} static slots but the bus offers only {}",
                    self.bus_config.static_slot_count
                ),
            });
        }
        for (index, slot) in self.slot_scratch.iter_mut().enumerate() {
            *slot = allocation.slot_of(index);
        }
        self.runtime.set_allocation(&self.slot_scratch, slot_count)
    }

    /// Replaces the engine's FlexRay configuration — the primitive behind
    /// bus-configuration sweep scenarios (cycle length, static-segment
    /// size). A no-op when `config` already matches the active
    /// configuration; otherwise the bus is rebuilt from scratch (every frame
    /// back in the dynamic segment, statistics cleared), so call it right
    /// after [`CoSimulation::reset`] and follow with
    /// [`CoSimulation::set_allocation`] to (re)validate the slot map against
    /// the new static segment.
    ///
    /// # Errors
    ///
    /// Propagates [`cps_flexray::FlexRayConfig::validate`] failures and
    /// frame-registration errors; the previous bus stays active on error.
    pub fn set_bus_config(&mut self, config: FlexRayConfig) -> Result<()> {
        if config == self.bus_config {
            return Ok(());
        }
        let mut bus = FlexRayBus::new(config)?;
        register_fleet_frames(&mut bus, self.fleet.apps())?;
        self.bus = bus;
        self.bus_config = config;
        Ok(())
    }

    /// The bus configuration the engine currently runs on (the fleet's
    /// design unless overridden by [`CoSimulation::set_bus_config`]).
    pub fn bus_config(&self) -> FlexRayConfig {
        self.bus_config
    }

    /// Rewinds the engine to time zero without reconstruction: every kernel
    /// returns to the origin, the runtime releases all slots, the bus log and
    /// counters are cleared and every frame returns to the dynamic segment.
    /// The configured threshold scale is preserved.
    ///
    /// # Errors
    ///
    /// Propagates bus errors (none occur for frames the engine registered).
    pub fn reset(&mut self) -> Result<()> {
        for kernel in &mut self.kernels {
            kernel.reset();
        }
        self.runtime.reset();
        self.bus.reset();
        for index in 0..self.fleet.app_count() {
            self.bus.reassign_frame(index as u32 + 1, Segment::Dynamic)?;
        }
        Ok(())
    }

    /// Scales every application's switching threshold `E_th` by `scale`
    /// (relative to the designed value) — the primitive behind threshold
    /// sweeps. The scale survives [`CoSimulation::reset`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `scale` is not positive.
    pub fn set_threshold_scale(&mut self, scale: f64) -> Result<()> {
        if !(scale > 0.0) || !scale.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: format!("threshold scale must be positive and finite, got {scale}"),
            });
        }
        let CoSimulation { fleet, runtime, .. } = self;
        for (index, app) in fleet.apps().iter().enumerate() {
            runtime.set_threshold(index, app.spec().threshold * scale)?;
        }
        self.threshold_scale = scale;
        Ok(())
    }

    /// Injects each application's configured disturbance at the current time
    /// (the case study applies all of them at t = 0).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn inject_disturbances(&mut self) -> Result<()> {
        self.inject_disturbances_scaled(1.0)
    }

    /// Injects each application's configured disturbance scaled by `scale` —
    /// the primitive behind Monte-Carlo disturbance sweeps.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn inject_disturbances_scaled(&mut self, scale: f64) -> Result<()> {
        let CoSimulation { fleet, kernels, .. } = self;
        for (app, kernel) in fleet.apps().iter().zip(kernels) {
            kernel.inject_disturbance_scaled(&app.spec().disturbance, scale)?;
        }
        Ok(())
    }

    /// Injects one disturbance vector per application (scaled by `scale`),
    /// overriding the designed disturbances — the primitive behind per-app
    /// disturbance-vector scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the number of vectors does
    /// not match the fleet; per-vector dimension errors are propagated.
    pub fn inject_disturbance_vectors(
        &mut self,
        disturbances: &[Vec<f64>],
        scale: f64,
    ) -> Result<()> {
        if disturbances.len() != self.kernels.len() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "expected {} disturbance vectors, got {}",
                    self.kernels.len(),
                    disturbances.len()
                ),
            });
        }
        for (kernel, disturbance) in self.kernels.iter_mut().zip(disturbances) {
            kernel.inject_disturbance_scaled(disturbance, scale)?;
        }
        Ok(())
    }

    /// Runs the co-simulation for `duration` seconds and returns the traces.
    ///
    /// # Errors
    ///
    /// Propagates simulator, runtime and bus errors.
    pub fn run(&mut self, duration: f64) -> Result<CoSimTrace> {
        if !(duration > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("duration must be positive, got {duration}"),
            });
        }
        let steps = (duration / self.period).ceil() as usize;
        let app_count = self.fleet.app_count();
        // Not `vec![Vec::with_capacity(steps); n]`: cloning a Vec drops its
        // capacity, which would leave all but one buffer unsized.
        let mut points: Vec<Vec<TracePoint>> =
            (0..app_count).map(|_| Vec::with_capacity(steps)).collect();
        let mut occupancy = Vec::with_capacity(steps);

        for step in 0..steps {
            let time = step as f64 * self.period;
            for (norm, kernel) in self.norms.iter_mut().zip(&self.kernels) {
                *norm = kernel.state_norm();
            }
            // Split the borrows: the runtime writes into the mode scratch.
            let CoSimulation { runtime, norms, modes, .. } = self;
            runtime.step_into(norms, modes)?;
            occupancy.push(self.runtime.slot_holders().to_vec());

            for (index, mode) in self.modes.iter().enumerate() {
                points[index].push(TracePoint { time, norm: self.norms[index], mode: *mode });
                // Mirror the control message onto the bus: TT users own their
                // allocated static slot for this period, ET users contend in
                // the dynamic segment.
                let frame_id = index as u32 + 1;
                let segment = match mode {
                    CommunicationMode::TimeTriggered => Segment::Static {
                        slot: self
                            .runtime
                            .slot_holders()
                            .iter()
                            .position(|holder| *holder == Some(index))
                            .unwrap_or(0),
                    },
                    CommunicationMode::EventTriggered => Segment::Dynamic,
                };
                // Reassignment can fail only transiently when two apps swap a
                // slot within one period; fall back to the dynamic segment.
                if self.bus.reassign_frame(frame_id, segment).is_err() {
                    self.bus.reassign_frame(frame_id, Segment::Dynamic)?;
                }
                self.bus.queue_message(frame_id, time)?;
                self.kernels[index].step(*mode);
            }
            self.bus.run_until(time + self.period);
        }

        let traces = self
            .fleet
            .apps()
            .iter()
            .zip(points)
            .map(|(app, series)| {
                let threshold = app.spec().threshold * self.threshold_scale;
                let norms: Vec<f64> = series.iter().map(|p| p.norm).collect();
                let response_time = cps_control::settling_index(&norms, threshold)
                    .map(|k| k as f64 * self.period);
                AppTrace {
                    name: app.name().to_string(),
                    points: series,
                    deadline: app.spec().deadline,
                    response_time,
                }
            })
            .collect();
        let bus_latencies = (0..app_count)
            .map(|index| LatencyStats::from_latencies(&self.bus.latencies_of(index as u32 + 1)))
            .collect();
        Ok(CoSimTrace {
            apps: traces,
            slot_occupancy: occupancy,
            period: self.period,
            bus_statistics: self.bus.statistics(),
            bus_latencies,
        })
    }

    /// Number of TT slots managed by the runtime (follows the allocation
    /// set with [`CoSimulation::set_allocation`]).
    pub fn slot_count(&self) -> usize {
        self.runtime.slot_holders().len()
    }

    /// Number of applications in the fleet.
    pub fn app_count(&self) -> usize {
        self.fleet.app_count()
    }

    /// The currently configured threshold scale (1.0 = as designed).
    pub fn threshold_scale(&self) -> f64 {
        self.threshold_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    #[test]
    fn case_study_cosim_meets_all_deadlines() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        cosim.inject_disturbances().unwrap();
        let trace = cosim.run(12.0).unwrap();
        assert!(trace.all_deadlines_met(), "traces: {:?}", summary(&trace));
        assert_eq!(trace.apps.len(), 6);
        assert!(!trace.slot_occupancy.is_empty());
        // At least one application actually used TT communication.
        assert!(trace
            .apps
            .iter()
            .any(|a| a.points.iter().any(|p| p.mode == CommunicationMode::TimeTriggered)));
        // The bus transported traffic in both segments.
        assert!(trace.bus_statistics.static_transmissions > 0);
        assert!(trace.bus_statistics.dynamic_transmissions > 0);
    }

    fn summary(trace: &CoSimTrace) -> Vec<(String, Option<f64>, f64)> {
        trace.apps.iter().map(|a| (a.name.clone(), a.response_time, a.deadline)).collect()
    }

    #[test]
    fn reset_and_rerun_reproduces_the_trace() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        cosim.inject_disturbances().unwrap();
        let first = cosim.run(2.0).unwrap();

        cosim.reset().unwrap();
        cosim.inject_disturbances().unwrap();
        let second = cosim.run(2.0).unwrap();

        assert_eq!(first.apps, second.apps);
        assert_eq!(first.slot_occupancy, second.slot_occupancy);
        assert_eq!(first.bus_statistics, second.bus_statistics);
    }

    #[test]
    fn scaled_disturbances_and_thresholds() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        assert_eq!(cosim.threshold_scale(), 1.0);
        assert_eq!(cosim.app_count(), 6);

        // A vanishing disturbance never leaves the steady state.
        cosim.inject_disturbances_scaled(0.0).unwrap();
        let trace = cosim.run(1.0).unwrap();
        assert!(trace
            .apps
            .iter()
            .all(|a| a.points.iter().all(|p| p.mode == CommunicationMode::EventTriggered)));

        // A huge threshold scale keeps every loop in ET despite a real
        // disturbance.
        cosim.reset().unwrap();
        cosim.set_threshold_scale(1e6).unwrap();
        cosim.inject_disturbances().unwrap();
        let trace = cosim.run(1.0).unwrap();
        assert!(trace
            .apps
            .iter()
            .all(|a| a.points.iter().all(|p| p.mode == CommunicationMode::EventTriggered)));
        assert!(cosim.set_threshold_scale(0.0).is_err());
    }

    #[test]
    fn bus_config_override_rebuilds_and_restores() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        assert_eq!(cosim.bus_config(), FlexRayConfig::paper_case_study());

        cosim.inject_disturbances().unwrap();
        let nominal = cosim.run(1.0).unwrap();

        // Override with a wider static segment, rerun, then restore: the
        // restored engine reproduces the nominal trace bit for bit.
        let wide = FlexRayConfig {
            cycle_length: 0.010,
            static_slot_count: 10,
            ..FlexRayConfig::paper_case_study()
        };
        cosim.reset().unwrap();
        cosim.set_bus_config(wide).unwrap();
        assert_eq!(cosim.bus_config(), wide);
        cosim.set_allocation(&allocation).unwrap();
        cosim.inject_disturbances().unwrap();
        let overridden = cosim.run(1.0).unwrap();
        // The trajectory is bus-independent; the bus statistics are not.
        assert_eq!(nominal.apps, overridden.apps);
        assert!(overridden.bus_statistics.cycles < nominal.bus_statistics.cycles);

        cosim.reset().unwrap();
        cosim.set_bus_config(FlexRayConfig::paper_case_study()).unwrap();
        cosim.set_allocation(&allocation).unwrap();
        cosim.inject_disturbances().unwrap();
        let restored = cosim.run(1.0).unwrap();
        assert_eq!(nominal.apps, restored.apps);
        assert_eq!(nominal.bus_statistics, restored.bus_statistics);

        // An invalid configuration is rejected and the active bus is kept.
        let invalid = FlexRayConfig { cycle_length: -1.0, ..FlexRayConfig::paper_case_study() };
        assert!(cosim.set_bus_config(invalid).is_err());
        assert_eq!(cosim.bus_config(), FlexRayConfig::paper_case_study());
        // An allocation wider than the active static segment is rejected.
        let narrow = FlexRayConfig {
            static_slot_count: 1,
            ..FlexRayConfig::paper_case_study()
        };
        cosim.reset().unwrap();
        cosim.set_bus_config(narrow).unwrap();
        if allocation.slot_count() > 1 {
            assert!(cosim.set_allocation(&allocation).is_err());
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        // Empty application list.
        assert!(CoSimulation::new(vec![], &allocation, FlexRayConfig::paper_case_study()).is_err());
        // Bus with too few static slots.
        let tiny_bus = FlexRayConfig {
            cycle_length: 0.005,
            static_slot_count: 1,
            static_slot_length: 0.0002,
            minislot_count: 60,
            minislot_length: 0.00005,
        };
        if allocation.slot_count() > 1 {
            assert!(CoSimulation::new(apps, &allocation, tiny_bus).is_err());
        }
    }
}
