//! Plant / runtime / bus co-simulation — the engine behind Figure 5.
//!
//! Every sampling period the engine reads the plant-state norms, lets the
//! dynamic resource-allocation runtime decide which application may use its
//! TT slot (Figure 1), steps each closed loop with the controller and delay
//! model of its granted communication mode, and mirrors the resulting
//! traffic onto a cycle-accurate FlexRay bus to collect realistic latency
//! and slot-usage statistics.

use crate::application::ControlApplication;
use crate::error::{CoreError, Result};
use crate::fleet::DesignedFleet;
use crate::runtime::AllocationRuntime;
use cps_control::{CommunicationMode, StepKernel};
use cps_flexray::{
    BusStatistics, FaultModel, FlexRayBus, FlexRayConfig, Frame, LatencyStats, Segment, SimRng,
};
use cps_sched::SlotAllocation;
use std::sync::Arc;

/// One record of one application's trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Simulation time at the start of the period.
    pub time: f64,
    /// Plant-state norm ‖x‖ at that time.
    pub norm: f64,
    /// Communication mode used during the period.
    pub mode: CommunicationMode,
}

/// Trajectory and verdict of one application in the co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AppTrace {
    /// Application name.
    pub name: String,
    /// Sampled trajectory.
    pub points: Vec<TracePoint>,
    /// Deadline (desired response time) of the application.
    pub deadline: f64,
    /// Measured response time: the first time from which the norm stays at or
    /// below the threshold (None if it never settles within the simulation).
    pub response_time: Option<f64>,
    /// Periods stepped with the last command held at the actuator because
    /// the control frame was lost on the bus (0 on a nominal bus).
    pub held_periods: u64,
    /// Longest streak of consecutive lost control frames (0 on a nominal
    /// bus).
    pub max_consecutive_losses: u64,
}

impl AppTrace {
    /// Returns `true` if the measured response time meets the deadline.
    pub fn deadline_met(&self) -> bool {
        self.response_time.map(|t| t <= self.deadline).unwrap_or(false)
    }

    /// Total time the application spent on TT communication.
    pub fn tt_time(&self, period: f64) -> f64 {
        self.points.iter().filter(|p| p.mode == CommunicationMode::TimeTriggered).count() as f64
            * period
    }
}

/// The complete result of a co-simulation run.
#[derive(Debug, Clone)]
pub struct CoSimTrace {
    /// One trace per application, in the order the applications were given.
    pub apps: Vec<AppTrace>,
    /// Slot occupancy per period: `occupancy[k][slot]` is the application
    /// index holding the slot during period `k`, if any.
    pub slot_occupancy: Vec<Vec<Option<usize>>>,
    /// Sampling period of the co-simulation.
    pub period: f64,
    /// FlexRay bus usage statistics accumulated over the run.
    pub bus_statistics: BusStatistics,
    /// Observed bus latency statistics per application.
    pub bus_latencies: Vec<LatencyStats>,
}

impl CoSimTrace {
    /// Returns `true` if every application met its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.apps.iter().all(AppTrace::deadline_met)
    }
}

/// Periodic re-disturbance of the whole fleet — a stress pattern that forces
/// repeated transient phases and therefore repeated TT-slot requests
/// ("mode-switch storms").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSwitchStorm {
    /// Seconds between storm hits (rounded to whole sampling periods, at
    /// least one). The first hit lands one interval into the run, not at
    /// t = 0 — the initial disturbance is injected separately.
    pub interval: f64,
    /// Scale applied to every application's designed disturbance at each hit.
    pub scale: f64,
}

/// Degradation applied inside the co-simulation engine (as opposed to the
/// bus-side [`FaultModel`]): sensor noise on the norms the allocation runtime
/// decides on, and optional mode-switch storms.
///
/// One [`SimRng`] stream, seeded from `seed`, drives the noise draws — one
/// draw per application per period whenever a degradation config is
/// installed (even at amplitude zero), so the draw sequence depends only on
/// the configuration and the step count, never on the simulated data.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegradationConfig {
    /// Seed of the engine's degradation RNG stream;
    /// [`CoSimulation::reset`] rewinds the stream to this seed.
    pub seed: u64,
    /// Amplitude of the uniform measurement noise added to each plant-state
    /// norm before the runtime's mode decision (the *true* norms still drive
    /// the plants and the recorded traces). Corrupted norms are clamped at
    /// zero, since a norm is nonnegative.
    pub sensor_noise: f64,
    /// Optional periodic re-disturbance of the fleet.
    pub storm: Option<ModeSwitchStorm>,
}

impl DegradationConfig {
    /// Sensor noise only.
    pub fn noise(seed: u64, sensor_noise: f64) -> Self {
        DegradationConfig { seed, sensor_noise, storm: None }
    }

    /// Returns the config with a mode-switch storm.
    #[must_use]
    pub fn with_storm(mut self, interval: f64, scale: f64) -> Self {
        self.storm = Some(ModeSwitchStorm { interval, scale });
        self
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if !(self.sensor_noise >= 0.0) || !self.sensor_noise.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "sensor noise must be finite and nonnegative, got {}",
                    self.sensor_noise
                ),
            });
        }
        if let Some(storm) = &self.storm {
            if !(storm.interval > 0.0) || !storm.interval.is_finite() {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "storm interval must be positive and finite, got {}",
                        storm.interval
                    ),
                });
            }
            if !storm.scale.is_finite() {
                return Err(CoreError::InvalidConfig {
                    reason: format!("storm scale must be finite, got {}", storm.scale),
                });
            }
        }
        Ok(())
    }
}

/// Online, allocation-free summary of one co-simulation run — what the
/// streaming campaign engine collects instead of materialising a full
/// [`CoSimTrace`]. Fill it with [`CoSimulation::run_metrics_into`]; on a
/// warm (same-sized) instance the fill allocates nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMetrics {
    /// Number of sampling periods simulated.
    pub steps: usize,
    /// Sampling period in seconds.
    pub period: f64,
    /// Per-application measured response time (`None` = never settled
    /// within the run), same definition as [`AppTrace::response_time`].
    pub response_times: Vec<Option<f64>>,
    /// Per-application deadline verdicts.
    pub deadlines_met: Vec<bool>,
    /// Per-application peak plant-state norm over the run.
    pub peak_norms: Vec<f64>,
    /// Per-application number of periods spent in TT mode.
    pub tt_periods: Vec<u64>,
    /// Per-application hold-last-command periods (lost control frames).
    pub held_periods: Vec<u64>,
    /// Per-application longest consecutive-loss streak.
    pub max_consecutive_losses: Vec<u64>,
    /// Bus counters accumulated over the run.
    pub bus: BusStatistics,
    /// Online settling candidates (scratch for the streaming settling-time
    /// computation).
    pub(crate) candidates: Vec<usize>,
}

impl RunMetrics {
    /// `true` if every application settled within its deadline.
    pub fn all_deadlines_met(&self) -> bool {
        self.deadlines_met.iter().all(|&met| met)
    }

    /// Largest per-application response time; `None` if any application
    /// never settled (or the metrics are empty).
    pub fn max_response_time(&self) -> Option<f64> {
        if self.response_times.is_empty() {
            return None;
        }
        self.response_times.iter().try_fold(0.0f64, |acc, r| r.map(|t| acc.max(t)))
    }

    /// Largest per-application peak norm.
    pub fn max_peak_norm(&self) -> f64 {
        self.peak_norms.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of application-periods spent in TT mode — the engine-level
    /// static-slot utilisation of the run.
    pub fn tt_share(&self) -> f64 {
        if self.steps == 0 || self.tt_periods.is_empty() {
            return 0.0;
        }
        self.tt_periods.iter().sum::<u64>() as f64
            / (self.steps as f64 * self.tt_periods.len() as f64)
    }

    /// Resizes every per-application series to `app_count` and zeroes the
    /// contents (no allocation once the capacity is warm).
    pub(crate) fn begin(&mut self, app_count: usize, period: f64) {
        self.steps = 0;
        self.period = period;
        self.response_times.clear();
        self.response_times.resize(app_count, None);
        self.deadlines_met.clear();
        self.deadlines_met.resize(app_count, false);
        self.peak_norms.clear();
        self.peak_norms.resize(app_count, 0.0);
        self.tt_periods.clear();
        self.tt_periods.resize(app_count, 0);
        self.held_periods.clear();
        self.held_periods.resize(app_count, 0);
        self.max_consecutive_losses.clear();
        self.max_consecutive_losses.resize(app_count, 0);
        self.candidates.clear();
        self.candidates.resize(app_count, 0);
        self.bus = BusStatistics::default();
    }
}

/// Frame size (in payload words) of every application's control message.
const CONTROL_FRAME_PAYLOAD: usize = 2;

/// Registers one bus frame per application (frame id = application index
/// plus one). Every control signal starts in the dynamic segment and is
/// moved into its TT slot on demand; used by engine construction *and* by
/// per-scenario bus rebuilds, so an overridden-then-restored bus is
/// registered identically to the original.
pub(crate) fn register_fleet_frames(bus: &mut FlexRayBus, apps: &[ControlApplication]) -> Result<()> {
    for (index, app) in apps.iter().enumerate() {
        bus.register_frame(Frame::dynamic(index as u32 + 1, app.name(), CONTROL_FRAME_PAYLOAD)?)?;
    }
    Ok(())
}

/// The co-simulation engine.
///
/// The engine is the *mutable* half of a fleet: it shares the immutable
/// [`DesignedFleet`] (designed controllers, fused kernel matrices, bus/slot
/// configuration) through an [`Arc`] and owns only scratch state — kernel
/// state buffers, runtime phases, the bus, and the per-period norm/mode
/// buffers. Each application's closed loop is stepped by a precompiled,
/// allocation-free [`StepKernel`]; [`CoSimulation::reset`] rewinds
/// everything to time zero without reconstruction, so repeated runs — the
/// fig5 bench, Monte-Carlo disturbance sweeps, fleet dimensioning — pay the
/// design cost once, and parallel scenario workers spin up for the price of
/// a handful of buffers ([`DesignedFleet::engine`]).
#[derive(Debug)]
pub struct CoSimulation {
    fleet: Arc<DesignedFleet>,
    kernels: Vec<StepKernel>,
    runtime: AllocationRuntime,
    bus: FlexRayBus,
    /// Bus configuration the engine currently runs on (the fleet's design
    /// unless overridden by [`CoSimulation::set_bus_config`]).
    bus_config: FlexRayConfig,
    period: f64,
    threshold_scale: f64,
    /// Scratch: plant-state norms of the current period.
    norms: Vec<f64>,
    /// Scratch: communication modes granted for the current period.
    modes: Vec<CommunicationMode>,
    /// Scratch: per-app slot assignment staged by [`CoSimulation::set_allocation`].
    slot_scratch: Vec<Option<usize>>,
    /// Bus-side fault model (kept here so bus rebuilds reapply it).
    fault: Option<FaultModel>,
    /// Engine-side degradation (sensor noise, mode-switch storms).
    degradation: Option<DegradationConfig>,
    /// RNG stream of the degradation layer (reseeded on reset).
    degradation_rng: SimRng,
    /// Scratch: noise-corrupted norms handed to the runtime under degradation.
    noisy_norms: Vec<f64>,
    /// Per-app bus loss counters as of the previous period (to detect fresh
    /// losses without querying transmission logs).
    prev_losses: Vec<u64>,
    /// Per-app current consecutive-loss streak.
    consecutive_losses: Vec<u64>,
    /// Per-app longest consecutive-loss streak since reset.
    max_consecutive_losses: Vec<u64>,
    /// Per-app hold-last-command periods since reset.
    held_periods: Vec<u64>,
}

impl CoSimulation {
    /// Builds the engine from designed applications and an offline slot
    /// allocation (application order must match the allocation's indices).
    ///
    /// Convenience for [`DesignedFleet::new`] + [`DesignedFleet::engine`];
    /// use the two-step form when several engines should share one design.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if the applications use different
    ///   sampling periods, the allocation references unknown applications, or
    ///   the bus does not offer enough static slots.
    pub fn new(
        apps: Vec<ControlApplication>,
        allocation: &SlotAllocation,
        bus_config: FlexRayConfig,
    ) -> Result<Self> {
        let fleet = Arc::new(DesignedFleet::new(apps, allocation.clone(), bus_config)?);
        CoSimulation::from_fleet(fleet)
    }

    /// Builds an engine over a shared fleet design: only the mutable scratch
    /// (kernel state buffers, runtime, bus) is constructed here.
    ///
    /// # Errors
    ///
    /// Propagates bus-construction failures.
    pub fn from_fleet(fleet: Arc<DesignedFleet>) -> Result<Self> {
        let mut kernels = Vec::with_capacity(fleet.app_count());
        let mut bus = FlexRayBus::new(fleet.bus_config())?;
        register_fleet_frames(&mut bus, fleet.apps())?;
        for app in fleet.apps() {
            kernels.push(app.kernel()?);
        }
        let runtime = AllocationRuntime::new(fleet.runtime_apps().to_vec(), fleet.slot_count())?;
        let app_count = fleet.app_count();
        let period = fleet.period();
        let bus_config = fleet.bus_config();
        Ok(CoSimulation {
            fleet,
            kernels,
            runtime,
            bus,
            bus_config,
            period,
            threshold_scale: 1.0,
            norms: vec![0.0; app_count],
            modes: Vec::with_capacity(app_count),
            slot_scratch: vec![None; app_count],
            fault: None,
            degradation: None,
            degradation_rng: SimRng::seeded(0),
            noisy_norms: Vec::with_capacity(app_count),
            prev_losses: vec![0; app_count],
            consecutive_losses: vec![0; app_count],
            max_consecutive_losses: vec![0; app_count],
            held_periods: vec![0; app_count],
        })
    }

    /// The shared fleet design this engine runs on.
    pub fn fleet(&self) -> &Arc<DesignedFleet> {
        &self.fleet
    }

    /// Replaces the engine's slot map with `allocation` — the primitive
    /// behind slot-allocation sweep scenarios. All runtime phases and slot
    /// grants are cleared (call after [`CoSimulation::reset`], before
    /// injecting disturbances); the designed thresholds and the configured
    /// threshold scale are preserved.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the allocation needs more
    /// static slots than the bus offers.
    pub fn set_allocation(&mut self, allocation: &SlotAllocation) -> Result<()> {
        let slot_count = allocation.slot_count();
        if slot_count > self.bus_config.static_slot_count {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "allocation needs {slot_count} static slots but the bus offers only {}",
                    self.bus_config.static_slot_count
                ),
            });
        }
        for (index, slot) in self.slot_scratch.iter_mut().enumerate() {
            *slot = allocation.slot_of(index);
        }
        self.runtime.set_allocation(&self.slot_scratch, slot_count)
    }

    /// Replaces the engine's FlexRay configuration — the primitive behind
    /// bus-configuration sweep scenarios (cycle length, static-segment
    /// size). A no-op when `config` already matches the active
    /// configuration; otherwise the bus is rebuilt from scratch (every frame
    /// back in the dynamic segment, statistics cleared), so call it right
    /// after [`CoSimulation::reset`] and follow with
    /// [`CoSimulation::set_allocation`] to (re)validate the slot map against
    /// the new static segment.
    ///
    /// # Errors
    ///
    /// Propagates [`cps_flexray::FlexRayConfig::validate`] failures and
    /// frame-registration errors; the previous bus stays active on error.
    pub fn set_bus_config(&mut self, config: FlexRayConfig) -> Result<()> {
        if config == self.bus_config {
            return Ok(());
        }
        let mut bus = FlexRayBus::new(config)?;
        register_fleet_frames(&mut bus, self.fleet.apps())?;
        // The rebuilt bus inherits the engine's fault model and logging flag.
        bus.set_fault_model(self.fault)?;
        bus.set_logging(self.bus.logging());
        self.bus = bus;
        self.bus_config = config;
        Ok(())
    }

    /// The bus configuration the engine currently runs on (the fleet's
    /// design unless overridden by [`CoSimulation::set_bus_config`]).
    pub fn bus_config(&self) -> FlexRayConfig {
        self.bus_config
    }

    /// Rewinds the engine to time zero without reconstruction: every kernel
    /// returns to the origin, the runtime releases all slots, the bus log and
    /// counters are cleared and every frame returns to the dynamic segment.
    /// The fault and degradation layers rewind with it — the bus reseeds its
    /// fault RNG from the installed model, the degradation RNG reseeds from
    /// its config, and all loss/hold trackers are zeroed — so a
    /// reset-and-rerun under faults replays the fresh run bit for bit. The
    /// configured threshold scale, fault model and degradation config are
    /// preserved.
    ///
    /// # Errors
    ///
    /// Propagates bus errors (none occur for frames the engine registered).
    pub fn reset(&mut self) -> Result<()> {
        for kernel in &mut self.kernels {
            kernel.reset();
        }
        self.runtime.reset();
        self.bus.reset();
        for index in 0..self.fleet.app_count() {
            self.bus.reassign_frame(index as u32 + 1, Segment::Dynamic)?;
        }
        self.reseed_degradation();
        self.prev_losses.fill(0);
        self.consecutive_losses.fill(0);
        self.max_consecutive_losses.fill(0);
        self.held_periods.fill(0);
        Ok(())
    }

    /// Installs (or removes, with `None`) the bus-side fault model. The
    /// bus's fault RNG reseeds from the model, and the model survives
    /// [`CoSimulation::reset`] and [`CoSimulation::set_bus_config`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any model probability is
    /// outside `[0, 1]`.
    pub fn set_fault_model(&mut self, model: Option<FaultModel>) -> Result<()> {
        self.bus.set_fault_model(model)?;
        self.fault = model;
        Ok(())
    }

    /// The currently installed bus-side fault model, if any.
    pub fn fault_model(&self) -> Option<FaultModel> {
        self.fault
    }

    /// Installs (or removes, with `None`) the engine-side degradation
    /// (sensor noise, mode-switch storms). The degradation RNG reseeds from
    /// the config, which survives [`CoSimulation::reset`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on a negative/non-finite noise
    /// amplitude or an invalid storm.
    pub fn set_degradation(&mut self, degradation: Option<DegradationConfig>) -> Result<()> {
        if let Some(config) = &degradation {
            config.validate()?;
        }
        self.degradation = degradation;
        self.reseed_degradation();
        Ok(())
    }

    /// The currently installed degradation config, if any.
    pub fn degradation(&self) -> Option<DegradationConfig> {
        self.degradation
    }

    fn reseed_degradation(&mut self) {
        self.degradation_rng = SimRng::seeded(self.degradation.map(|d| d.seed).unwrap_or(0));
    }

    /// Scales every application's switching threshold `E_th` by `scale`
    /// (relative to the designed value) — the primitive behind threshold
    /// sweeps. The scale survives [`CoSimulation::reset`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `scale` is not positive.
    pub fn set_threshold_scale(&mut self, scale: f64) -> Result<()> {
        if !(scale > 0.0) || !scale.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: format!("threshold scale must be positive and finite, got {scale}"),
            });
        }
        let CoSimulation { fleet, runtime, .. } = self;
        for (index, app) in fleet.apps().iter().enumerate() {
            runtime.set_threshold(index, app.spec().threshold * scale)?;
        }
        self.threshold_scale = scale;
        Ok(())
    }

    /// Injects each application's configured disturbance at the current time
    /// (the case study applies all of them at t = 0).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn inject_disturbances(&mut self) -> Result<()> {
        self.inject_disturbances_scaled(1.0)
    }

    /// Injects each application's configured disturbance scaled by `scale` —
    /// the primitive behind Monte-Carlo disturbance sweeps.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn inject_disturbances_scaled(&mut self, scale: f64) -> Result<()> {
        let CoSimulation { fleet, kernels, .. } = self;
        for (app, kernel) in fleet.apps().iter().zip(kernels) {
            kernel.inject_disturbance_scaled(&app.spec().disturbance, scale)?;
        }
        Ok(())
    }

    /// Injects one disturbance vector per application (scaled by `scale`),
    /// overriding the designed disturbances — the primitive behind per-app
    /// disturbance-vector scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the number of vectors does
    /// not match the fleet; per-vector dimension errors are propagated.
    pub fn inject_disturbance_vectors(
        &mut self,
        disturbances: &[Vec<f64>],
        scale: f64,
    ) -> Result<()> {
        if disturbances.len() != self.kernels.len() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "expected {} disturbance vectors, got {}",
                    self.kernels.len(),
                    disturbances.len()
                ),
            });
        }
        for (kernel, disturbance) in self.kernels.iter_mut().zip(disturbances) {
            kernel.inject_disturbance_scaled(disturbance, scale)?;
        }
        Ok(())
    }

    /// Advances the engine by one sampling period: applies a due mode-switch
    /// storm, captures the plant-state norms, lets the runtime grant slots
    /// on the (possibly noise-corrupted) norms, mirrors the control traffic
    /// onto the bus, advances the bus through the period, and finally steps
    /// every kernel — the granted mode's closed loop when its command
    /// arrived, hold-last-command when the fault layer lost the frame.
    /// Allocation-free on a warm engine.
    ///
    /// With no fault model and no degradation installed this is
    /// step-for-step identical to the original nominal loop: the bus outcome
    /// depends only on the reassign/queue calls made before it advances, and
    /// no kernel state is read between queueing and stepping.
    fn advance_period(&mut self, step: usize) -> Result<()> {
        let time = step as f64 * self.period;
        if let Some(storm) = self.degradation.and_then(|d| d.storm) {
            let interval_steps = ((storm.interval / self.period).round() as usize).max(1);
            if step > 0 && step % interval_steps == 0 {
                self.inject_disturbances_scaled(storm.scale)?;
            }
        }
        for (norm, kernel) in self.norms.iter_mut().zip(&self.kernels) {
            *norm = kernel.state_norm();
        }
        // Split the borrows: the runtime writes into the mode scratch. The
        // runtime decides on what the sensors report — the true norms, or
        // under degradation norms corrupted by uniform measurement noise
        // (one draw per application per period whatever the amplitude, so
        // the draw sequence is data-independent). The true norms still drive
        // the plants and the recorded traces.
        let CoSimulation { runtime, norms, noisy_norms, modes, degradation, degradation_rng, .. } =
            self;
        if let Some(config) = degradation {
            noisy_norms.clear();
            for norm in norms.iter() {
                let corrupted = norm + config.sensor_noise * degradation_rng.next_signed_unit();
                noisy_norms.push(corrupted.max(0.0));
            }
            runtime.step_into(noisy_norms, modes)?;
        } else {
            runtime.step_into(norms, modes)?;
        }

        for (index, mode) in self.modes.iter().enumerate() {
            // Mirror the control message onto the bus: TT users own their
            // allocated static slot for this period, ET users contend in
            // the dynamic segment.
            let frame_id = index as u32 + 1;
            let segment = match mode {
                CommunicationMode::TimeTriggered => Segment::Static {
                    slot: self
                        .runtime
                        .slot_holders()
                        .iter()
                        .position(|holder| *holder == Some(index))
                        .unwrap_or(0),
                },
                CommunicationMode::EventTriggered => Segment::Dynamic,
            };
            // Reassignment can fail only transiently when two apps swap a
            // slot within one period; fall back to the dynamic segment.
            if self.bus.reassign_frame(frame_id, segment).is_err() {
                self.bus.reassign_frame(frame_id, Segment::Dynamic)?;
            }
            self.bus.queue_message(frame_id, time)?;
        }
        self.bus.advance_until(time + self.period);

        // Step every loop, now that the bus has decided each frame's fate:
        // a fresh loss of this application's frame means the actuator never
        // received the new command — the plant evolves open loop under the
        // held previous input.
        for (index, mode) in self.modes.iter().enumerate() {
            let losses = self.bus.losses_of(index as u32 + 1);
            if losses > self.prev_losses[index] {
                self.prev_losses[index] = losses;
                self.held_periods[index] += 1;
                self.consecutive_losses[index] += 1;
                if self.consecutive_losses[index] > self.max_consecutive_losses[index] {
                    self.max_consecutive_losses[index] = self.consecutive_losses[index];
                }
                self.kernels[index].step_hold();
            } else {
                self.consecutive_losses[index] = 0;
                self.kernels[index].step(*mode);
            }
        }
        Ok(())
    }

    /// Runs the co-simulation for `duration` seconds and returns the traces.
    ///
    /// # Errors
    ///
    /// Propagates simulator, runtime and bus errors.
    pub fn run(&mut self, duration: f64) -> Result<CoSimTrace> {
        if !(duration > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("duration must be positive, got {duration}"),
            });
        }
        let steps = (duration / self.period).ceil() as usize;
        let app_count = self.fleet.app_count();
        // Not `vec![Vec::with_capacity(steps); n]`: cloning a Vec drops its
        // capacity, which would leave all but one buffer unsized.
        let mut points: Vec<Vec<TracePoint>> =
            (0..app_count).map(|_| Vec::with_capacity(steps)).collect();
        let mut occupancy = Vec::with_capacity(steps);

        for step in 0..steps {
            let time = step as f64 * self.period;
            self.advance_period(step)?;
            occupancy.push(self.runtime.slot_holders().to_vec());
            for (index, mode) in self.modes.iter().enumerate() {
                points[index].push(TracePoint { time, norm: self.norms[index], mode: *mode });
            }
        }

        let traces = self
            .fleet
            .apps()
            .iter()
            .enumerate()
            .zip(points)
            .map(|((index, app), series)| {
                let threshold = app.spec().threshold * self.threshold_scale;
                let norms: Vec<f64> = series.iter().map(|p| p.norm).collect();
                let response_time = cps_control::settling_index(&norms, threshold)
                    .map(|k| k as f64 * self.period);
                AppTrace {
                    name: app.name().to_string(),
                    points: series,
                    deadline: app.spec().deadline,
                    response_time,
                    held_periods: self.held_periods[index],
                    max_consecutive_losses: self.max_consecutive_losses[index],
                }
            })
            .collect();
        let bus_latencies = (0..app_count)
            .map(|index| LatencyStats::from_latencies(&self.bus.latencies_of(index as u32 + 1)))
            .collect();
        Ok(CoSimTrace {
            apps: traces,
            slot_occupancy: occupancy,
            period: self.period,
            bus_statistics: self.bus.statistics(),
            bus_latencies,
        })
    }

    /// Runs the co-simulation for `duration` seconds, collecting only the
    /// online summary in `metrics` — no trace is materialised, the bus log
    /// is suspended for the duration, and on a warm engine/metrics pair the
    /// whole run allocates nothing. This is the streaming campaign engine's
    /// hot path; the trajectory it simulates is bit-identical to
    /// [`CoSimulation::run`]'s.
    ///
    /// The hold/loss counters reported are those accumulated since the last
    /// [`CoSimulation::reset`] (reset before each scenario to make them
    /// per-run).
    ///
    /// # Errors
    ///
    /// Propagates simulator, runtime and bus errors (the bus logging flag is
    /// restored either way).
    pub fn run_metrics_into(&mut self, duration: f64, metrics: &mut RunMetrics) -> Result<()> {
        if !(duration > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("duration must be positive, got {duration}"),
            });
        }
        let steps = (duration / self.period).ceil() as usize;
        let app_count = self.fleet.app_count();
        metrics.begin(app_count, self.period);
        metrics.steps = steps;
        let logging = self.bus.logging();
        self.bus.set_logging(false);
        let outcome = self.run_metrics_loop(steps, metrics);
        self.bus.set_logging(logging);
        outcome?;

        for index in 0..app_count {
            let app = &self.fleet.apps()[index];
            // Same semantics as `settling_index`: the candidate is one past
            // the last threshold violation; a violation in the final period
            // means the run never settled.
            let response = (metrics.candidates[index] < steps)
                .then(|| metrics.candidates[index] as f64 * self.period);
            metrics.response_times[index] = response;
            metrics.deadlines_met[index] =
                response.map(|t| t <= app.spec().deadline).unwrap_or(false);
            metrics.held_periods[index] = self.held_periods[index];
            metrics.max_consecutive_losses[index] = self.max_consecutive_losses[index];
        }
        metrics.bus = self.bus.statistics();
        Ok(())
    }

    fn run_metrics_loop(&mut self, steps: usize, metrics: &mut RunMetrics) -> Result<()> {
        for step in 0..steps {
            self.advance_period(step)?;
            for index in 0..self.norms.len() {
                let norm = self.norms[index];
                let threshold =
                    self.fleet.apps()[index].spec().threshold * self.threshold_scale;
                if norm > threshold {
                    metrics.candidates[index] = step + 1;
                }
                if norm > metrics.peak_norms[index] {
                    metrics.peak_norms[index] = norm;
                }
                if self.modes[index] == CommunicationMode::TimeTriggered {
                    metrics.tt_periods[index] += 1;
                }
            }
        }
        Ok(())
    }

    /// Number of TT slots managed by the runtime (follows the allocation
    /// set with [`CoSimulation::set_allocation`]).
    pub fn slot_count(&self) -> usize {
        self.runtime.slot_holders().len()
    }

    /// Number of applications in the fleet.
    pub fn app_count(&self) -> usize {
        self.fleet.app_count()
    }

    /// The currently configured threshold scale (1.0 = as designed).
    pub fn threshold_scale(&self) -> f64 {
        self.threshold_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    #[test]
    fn case_study_cosim_meets_all_deadlines() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        cosim.inject_disturbances().unwrap();
        let trace = cosim.run(12.0).unwrap();
        assert!(trace.all_deadlines_met(), "traces: {:?}", summary(&trace));
        assert_eq!(trace.apps.len(), 6);
        assert!(!trace.slot_occupancy.is_empty());
        // At least one application actually used TT communication.
        assert!(trace
            .apps
            .iter()
            .any(|a| a.points.iter().any(|p| p.mode == CommunicationMode::TimeTriggered)));
        // The bus transported traffic in both segments.
        assert!(trace.bus_statistics.static_transmissions > 0);
        assert!(trace.bus_statistics.dynamic_transmissions > 0);
    }

    fn summary(trace: &CoSimTrace) -> Vec<(String, Option<f64>, f64)> {
        trace.apps.iter().map(|a| (a.name.clone(), a.response_time, a.deadline)).collect()
    }

    #[test]
    fn reset_and_rerun_reproduces_the_trace() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        cosim.inject_disturbances().unwrap();
        let first = cosim.run(2.0).unwrap();

        cosim.reset().unwrap();
        cosim.inject_disturbances().unwrap();
        let second = cosim.run(2.0).unwrap();

        assert_eq!(first.apps, second.apps);
        assert_eq!(first.slot_occupancy, second.slot_occupancy);
        assert_eq!(first.bus_statistics, second.bus_statistics);
    }

    #[test]
    fn scaled_disturbances_and_thresholds() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        assert_eq!(cosim.threshold_scale(), 1.0);
        assert_eq!(cosim.app_count(), 6);

        // A vanishing disturbance never leaves the steady state.
        cosim.inject_disturbances_scaled(0.0).unwrap();
        let trace = cosim.run(1.0).unwrap();
        assert!(trace
            .apps
            .iter()
            .all(|a| a.points.iter().all(|p| p.mode == CommunicationMode::EventTriggered)));

        // A huge threshold scale keeps every loop in ET despite a real
        // disturbance.
        cosim.reset().unwrap();
        cosim.set_threshold_scale(1e6).unwrap();
        cosim.inject_disturbances().unwrap();
        let trace = cosim.run(1.0).unwrap();
        assert!(trace
            .apps
            .iter()
            .all(|a| a.points.iter().all(|p| p.mode == CommunicationMode::EventTriggered)));
        assert!(cosim.set_threshold_scale(0.0).is_err());
    }

    #[test]
    fn bus_config_override_rebuilds_and_restores() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        assert_eq!(cosim.bus_config(), FlexRayConfig::paper_case_study());

        cosim.inject_disturbances().unwrap();
        let nominal = cosim.run(1.0).unwrap();

        // Override with a wider static segment, rerun, then restore: the
        // restored engine reproduces the nominal trace bit for bit.
        let wide = FlexRayConfig {
            cycle_length: 0.010,
            static_slot_count: 10,
            ..FlexRayConfig::paper_case_study()
        };
        cosim.reset().unwrap();
        cosim.set_bus_config(wide).unwrap();
        assert_eq!(cosim.bus_config(), wide);
        cosim.set_allocation(&allocation).unwrap();
        cosim.inject_disturbances().unwrap();
        let overridden = cosim.run(1.0).unwrap();
        // The trajectory is bus-independent; the bus statistics are not.
        assert_eq!(nominal.apps, overridden.apps);
        assert!(overridden.bus_statistics.cycles < nominal.bus_statistics.cycles);

        cosim.reset().unwrap();
        cosim.set_bus_config(FlexRayConfig::paper_case_study()).unwrap();
        cosim.set_allocation(&allocation).unwrap();
        cosim.inject_disturbances().unwrap();
        let restored = cosim.run(1.0).unwrap();
        assert_eq!(nominal.apps, restored.apps);
        assert_eq!(nominal.bus_statistics, restored.bus_statistics);

        // An invalid configuration is rejected and the active bus is kept.
        let invalid = FlexRayConfig { cycle_length: -1.0, ..FlexRayConfig::paper_case_study() };
        assert!(cosim.set_bus_config(invalid).is_err());
        assert_eq!(cosim.bus_config(), FlexRayConfig::paper_case_study());
        // An allocation wider than the active static segment is rejected.
        let narrow = FlexRayConfig {
            static_slot_count: 1,
            ..FlexRayConfig::paper_case_study()
        };
        cosim.reset().unwrap();
        cosim.set_bus_config(narrow).unwrap();
        if allocation.slot_count() > 1 {
            assert!(cosim.set_allocation(&allocation).is_err());
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        // Empty application list.
        assert!(CoSimulation::new(vec![], &allocation, FlexRayConfig::paper_case_study()).is_err());
        // Bus with too few static slots.
        let tiny_bus = FlexRayConfig {
            cycle_length: 0.005,
            static_slot_count: 1,
            static_slot_length: 0.0002,
            minislot_count: 60,
            minislot_length: 0.00005,
        };
        if allocation.slot_count() > 1 {
            assert!(CoSimulation::new(apps, &allocation, tiny_bus).is_err());
        }
    }
}
