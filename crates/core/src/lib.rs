//! # cps-core
//!
//! The co-design core of the DATE 2019 reproduction *Exploiting System
//! Dynamics for Resource-Efficient Automotive CPS Design*.
//!
//! This crate assembles the substrates (`cps-linalg`, `cps-control`,
//! `cps-flexray`, `cps-sched`) into the paper's complete flow:
//!
//! 1. [`ControlApplication`] — a distributed control application: plant,
//!    event-triggered and time-triggered controllers, control requirement and
//!    disturbance model.
//! 2. [`characterize_application`] / [`derive_timing_params`] — dwell/wait
//!    characterisation by switched-system simulation and extraction of the
//!    Table-I timing parameters (Figures 3 and 4).
//! 3. [`case_study`] — the paper's Section V: the published Table I, the slot
//!    allocation comparison (3 vs. 5 slots, +67 %) and a fully synthetic
//!    derived fleet exercising the pipeline end to end.
//! 4. [`AllocationRuntime`] — the Figure 1 dynamic resource-allocation scheme
//!    (ET by default, TT slot on demand, non-preemptive priority arbitration).
//! 5. [`FleetDesigner`] — the fleet-level design pipeline behind every
//!    design entry point: one [`cps_control::DesignWorkspace`] +
//!    [`cps_control::CharacterizationWorkspace`] scratch bundle per worker,
//!    independent application designs and characterisations fanned out
//!    across `std::thread::scope`, bit-identical for any worker count.
//! 6. [`DesignedFleet`] — the shared-immutable design artifact (designed
//!    controllers, fused kernel matrices, bus/slot configuration, and the
//!    computed-once `Arc`-shared characterisation table of
//!    [`DesignedFleet::timing_table`]) that any number of engines reference
//!    through an `Arc`; its [`DesignedFleet::design`] /
//!    [`DesignedFleet::design_optimal`] paths run the designer pipeline end
//!    to end (the latter dimensions the slot map with the exact
//!    branch-and-bound allocator, reusing one characterisation pass for the
//!    greedy incumbent, the exact search and the fleet's cached table).
//! 7. [`CoSimulation`] — plant/runtime/FlexRay co-simulation reproducing the
//!    responses of Figure 5, running on allocation-free
//!    [`cps_control::StepKernel`]s with `reset()`-and-rerun support.
//! 8. [`ScenarioBatch`] — batched, parallel multi-scenario co-simulation
//!    for disturbance / threshold / per-app-disturbance / slot-map /
//!    bus-configuration sweeps, deterministic across thread counts.
//!    [`BusConfigSweep`] spans the full bus design space — cycle length ×
//!    static-segment size × slot length Ψ (frame payload geometry) — with
//!    the Ψ-derived per-slot transmission overhead visible to every
//!    allocator via [`cps_sched::SlotTiming`].
//! 9. [`RobustnessCampaign`] — streaming Monte-Carlo robustness campaigns:
//!    a [`ScenarioSource`] generates scenarios on demand from
//!    `(campaign seed, index)`, worker threads replay them on faulty buses
//!    ([`cps_flexray::FaultModel`]) and degraded runtimes
//!    ([`DegradationConfig`]), and results fold into O(workers)-memory
//!    per-family aggregates ([`OnlineStats`], [`P2Quantile`]) with a
//!    Clopper–Pearson statistical model-checking readout
//!    ([`CampaignStats::settling_probabilities`]) — bit-identical for any
//!    worker count.
//! 10. [`experiments`] — one entry point per table/figure, used by the
//!     examples and the Criterion benches.
//!
//! # Example: the headline result
//!
//! ```
//! use cps_core::case_study;
//!
//! let apps = case_study::paper_table1();
//! let outcome = case_study::run_slot_allocation(&apps)?;
//! assert_eq!(outcome.non_monotonic_slots, 3);
//! assert_eq!(outcome.monotonic_slots, 5);
//! # Ok::<(), cps_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod application;
mod batch;
mod campaign;
mod characterize;
mod cosim;
mod designer;
mod error;
mod fleet;
mod runtime;
mod scenario;
mod stats;

pub mod case_study;
pub mod experiments;

pub use application::{ApplicationSpec, ControlApplication, ControllerSpec};
pub use campaign::{
    CampaignScenario, CampaignStats, FamilyStats, RobustnessCampaign, RobustnessSweep,
    ScenarioSource, SettlingProbability,
};
pub use case_study::CaseStudyOutcome;
pub use characterize::{
    characterize_application, characterize_application_with, derive_timing_params,
    derive_timing_params_with, fit_non_monotonic,
};
pub use cosim::{
    AppTrace, CoSimTrace, CoSimulation, DegradationConfig, ModeSwitchStorm, RunMetrics,
    TracePoint,
};
pub use cps_sched::CancelToken;
pub use designer::{BudgetedDesign, FleetDesigner};
pub use error::{CoreError, Result};
pub use fleet::DesignedFleet;
pub use runtime::{AllocationRuntime, AppPhase, RuntimeApp};
pub use scenario::{BusConfigSweep, ScenarioBatch, ScenarioOutcome, ScenarioSpec};
pub use stats::{clopper_pearson, OnlineStats, P2Quantile};
