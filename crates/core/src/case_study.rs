//! The paper's Section V case study: the published Table I (exact numbers),
//! a fully synthetic six-application fleet derived end-to-end from plant
//! models, and the slot-allocation comparison that yields the headline
//! "3 slots vs. 5 slots (+67 %)" result.

use crate::application::{ApplicationSpec, ControlApplication, ControllerSpec};
use crate::error::Result;
use cps_control::plants;
use cps_sched::{
    allocate_slots, AllocatorConfig, AppTimingParams, ModelKind, SlotAllocation, WaitTimeMethod,
};

/// The paper's Table I, exactly as published (re-exported from `cps-sched`).
pub fn paper_table1() -> Vec<AppTimingParams> {
    cps_sched::case_study_fixtures::paper_table1()
}

/// Outcome of the slot-allocation comparison between the non-monotonic and
/// the conservative monotonic dwell-time models.
#[derive(Debug, Clone)]
pub struct CaseStudyOutcome {
    /// Allocation computed with the paper's non-monotonic model.
    pub non_monotonic: SlotAllocation,
    /// Allocation computed with the conservative monotonic model.
    pub monotonic: SlotAllocation,
    /// Number of TT slots under the non-monotonic model.
    pub non_monotonic_slots: usize,
    /// Number of TT slots under the conservative monotonic model.
    pub monotonic_slots: usize,
    /// Extra communication resource required by the monotonic model,
    /// `(monotonic − non-monotonic) / non-monotonic` (the paper reports 67 %).
    pub overhead_fraction: f64,
}

/// Runs the paper's slot-allocation comparison on a set of applications.
///
/// # Errors
///
/// Propagates allocation failures (e.g. an application that cannot meet its
/// deadline even with a dedicated slot).
pub fn run_slot_allocation(apps: &[AppTimingParams]) -> Result<CaseStudyOutcome> {
    let base = AllocatorConfig {
        model: ModelKind::NonMonotonic,
        method: WaitTimeMethod::ClosedFormBound,
        ..AllocatorConfig::default()
    };
    let non_monotonic = allocate_slots(apps, &base)?;
    let monotonic = allocate_slots(
        apps,
        &AllocatorConfig { model: ModelKind::ConservativeMonotonic, ..base },
    )?;
    let non_monotonic_slots = non_monotonic.slot_count();
    let monotonic_slots = monotonic.slot_count();
    let overhead_fraction =
        (monotonic_slots as f64 - non_monotonic_slots as f64) / non_monotonic_slots as f64;
    Ok(CaseStudyOutcome {
        non_monotonic,
        monotonic,
        non_monotonic_slots,
        monotonic_slots,
        overhead_fraction,
    })
}

/// Sampling period shared by all case-study applications (20 ms, Section V).
pub const CASE_STUDY_PERIOD: f64 = 0.02;
/// Deterministic TT sensor-to-actuator delay (0.7 ms, Section III).
pub const CASE_STUDY_TT_DELAY: f64 = 0.0007;
/// Switching threshold E_th used throughout the case study.
pub const CASE_STUDY_THRESHOLD: f64 = 0.1;

/// The specifications of the six-application synthetic fleet used for the
/// *derived* variant of the case study: standard automotive plants, a
/// deliberately bandwidth-limited (pole-placed) design for the
/// event-triggered loop and a fast design for the time-triggered loop.
pub fn derived_fleet_specs() -> Vec<ApplicationSpec> {
    struct FleetEntry {
        name: &'static str,
        plant: cps_control::ContinuousStateSpace,
        disturbance: Vec<f64>,
        deadline: f64,
        inter_arrival: f64,
        et_poles: Vec<f64>,
        tt_poles: Vec<f64>,
    }
    let entries = vec![
        FleetEntry {
            name: "C1-cruise",
            plant: plants::cruise_control(),
            disturbance: vec![2.0],
            deadline: 9.5,
            inter_arrival: 200.0,
            et_poles: vec![-0.45, -40.0],
            tt_poles: vec![-2.5, -40.0],
        },
        FleetEntry {
            name: "C2-dc-motor",
            plant: plants::dc_motor_speed(),
            disturbance: vec![0.0, 1.0],
            deadline: 6.25,
            inter_arrival: 20.0,
            et_poles: vec![-0.9, -1.0, -40.0],
            tt_poles: vec![-5.0, -6.0, -40.0],
        },
        FleetEntry {
            name: "C3-servo",
            plant: plants::servo_position(),
            disturbance: vec![45.0_f64.to_radians(), 0.0],
            deadline: 8.0,
            inter_arrival: 15.0,
            et_poles: vec![-0.9, -1.0, -40.0],
            tt_poles: vec![-5.0, -6.0, -40.0],
        },
        FleetEntry {
            name: "C4-lane-keeping",
            plant: plants::lane_keeping(),
            disturbance: vec![0.8, 0.0],
            deadline: 7.5,
            inter_arrival: 200.0,
            et_poles: vec![-0.7, -0.8, -40.0],
            tt_poles: vec![-4.5, -5.5, -40.0],
        },
        FleetEntry {
            name: "C5-throttle",
            plant: plants::throttle_control(),
            disturbance: vec![0.6, 0.0],
            deadline: 8.5,
            inter_arrival: 20.0,
            et_poles: vec![-1.0, -1.1, -40.0],
            tt_poles: vec![-6.0, -7.0, -40.0],
        },
        FleetEntry {
            name: "C6-pendulum",
            plant: plants::inverted_pendulum(),
            disturbance: vec![0.25, 0.0],
            deadline: 6.0,
            inter_arrival: 10.0,
            et_poles: vec![-0.8, -0.9, -40.0],
            tt_poles: vec![-5.0, -6.0, -40.0],
        },
    ];
    entries
        .into_iter()
        .map(|entry| ApplicationSpec {
            name: entry.name.to_string(),
            plant: entry.plant,
            period: CASE_STUDY_PERIOD,
            et_delay: CASE_STUDY_PERIOD,
            tt_delay: CASE_STUDY_TT_DELAY,
            threshold: CASE_STUDY_THRESHOLD,
            disturbance: entry.disturbance,
            deadline: entry.deadline,
            inter_arrival: entry.inter_arrival,
            controllers: ControllerSpec::PolePlacement {
                et_poles: entry.et_poles,
                tt_poles: entry.tt_poles,
            },
            input_limit: None,
        })
        .collect()
}

/// A fleet of `count` specifications cycling through the six case-study
/// entries with unique names — the scaling axis for fleet-design throughput
/// studies (the `fleet_design` bench designs a 24-application fleet built
/// this way).
pub fn scaled_fleet_specs(count: usize) -> Vec<ApplicationSpec> {
    let base = derived_fleet_specs();
    (0..count)
        .map(|index| {
            let mut spec = base[index % base.len()].clone();
            spec.name = format!("{}-{}", spec.name, index / base.len());
            spec
        })
        .collect()
}

/// Builds the six-application synthetic derived fleet through the
/// [`crate::FleetDesigner`] pipeline.
///
/// The paper does not publish its plant models, so this fleet exercises the
/// complete pipeline (plant → controllers → characterisation → Table-I
/// parameters → allocation → co-simulation) on equivalent dynamics; the exact
/// published Table I is available separately via [`paper_table1`].
///
/// # Errors
///
/// Propagates controller-design failures.
pub fn derived_fleet() -> Result<Vec<ControlApplication>> {
    crate::designer::FleetDesigner::new().design(derived_fleet_specs())
}

/// Derives a Table-I-style parameter set for a fleet of designed applications
/// by characterising each one's dwell/wait curve and fitting the
/// non-monotonic model — routed through the parallel
/// [`crate::FleetDesigner::characterize`] pass (bit-identical to the
/// sequential per-application path for any worker count).
///
/// # Errors
///
/// Propagates characterisation failures.
pub fn derive_table(fleet: &[ControlApplication]) -> Result<Vec<AppTimingParams>> {
    crate::designer::FleetDesigner::new().characterize(fleet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_allocation_reproduces_headline_result() {
        let apps = paper_table1();
        let outcome = run_slot_allocation(&apps).unwrap();
        assert_eq!(outcome.non_monotonic_slots, 3);
        assert_eq!(outcome.monotonic_slots, 5);
        assert!((outcome.overhead_fraction - 0.6667).abs() < 0.01);
        assert!(outcome.non_monotonic.verify(&apps).unwrap());
        assert!(outcome.monotonic.verify(&apps).unwrap());
    }

    #[test]
    fn derived_fleet_produces_valid_table_and_allocation() {
        let fleet = derived_fleet().unwrap();
        assert_eq!(fleet.len(), 6);
        let table = derive_table(&fleet).unwrap();
        assert_eq!(table.len(), 6);
        for row in &table {
            assert!(row.xi_tt <= row.xi_et);
            assert!(row.xi_m >= row.xi_tt);
            assert!(row.deadline <= row.inter_arrival);
        }
        let outcome = run_slot_allocation(&table).unwrap();
        assert!(outcome.non_monotonic_slots >= 1);
        assert!(outcome.monotonic_slots >= outcome.non_monotonic_slots);
        assert!(outcome.non_monotonic.verify(&table).unwrap());
    }

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(CASE_STUDY_PERIOD, 0.02);
        assert_eq!(CASE_STUDY_TT_DELAY, 0.0007);
        assert_eq!(CASE_STUDY_THRESHOLD, 0.1);
    }
}
