//! The shared-immutable design artifact of a fleet: designed controllers,
//! precompiled fused step-kernel matrices, slot allocation and bus
//! configuration, validated once and shared (via [`Arc`]) by every
//! co-simulation engine spawned from it.
//!
//! The design-space workloads of Section V — slot-map sweeps, threshold
//! re-design, growing fleets — run *many* engines over one design.
//! [`DesignedFleet`] splits the expensive immutable part (controller
//! synthesis, closed-loop fusion, configuration validation) from the cheap
//! mutable part ([`CoSimulation`] scratch state), so spinning up a worker
//! engine costs a handful of buffer allocations instead of a full redesign
//! or a deep clone of every [`ControlApplication`].

use crate::application::ControlApplication;
use crate::cosim::CoSimulation;
use crate::designer::FleetDesigner;
use crate::error::{CoreError, Result};
use crate::runtime::RuntimeApp;
use cps_flexray::FlexRayConfig;
use cps_sched::{AppTimingParams, SlotAllocation};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// An immutable, validated fleet design: applications (with their
/// precompiled kernel matrices), the offline slot allocation and the bus
/// configuration. Construct once, wrap in an [`Arc`], and spawn as many
/// engines as needed via [`DesignedFleet::engine`].
#[derive(Debug)]
pub struct DesignedFleet {
    apps: Vec<ControlApplication>,
    allocation: SlotAllocation,
    bus_config: FlexRayConfig,
    /// Per-application runtime configuration derived from the allocation,
    /// cloned into each engine's mutable runtime.
    runtime_apps: Vec<RuntimeApp>,
    period: f64,
    /// The computed-once, `Arc`-shared characterisation table (Table-I rows
    /// in application order). Bus-independent by construction — the
    /// dwell/wait curves depend only on the controllers and the sampling
    /// period — so no bus or slot-map change can invalidate it. Design
    /// flows seed it with the pass they already ran; otherwise the first
    /// [`DesignedFleet::timing_table`] call fills it (exactly once, even
    /// under concurrent access).
    timing_table: OnceLock<Arc<Vec<AppTimingParams>>>,
    /// Serialises the cache fill so concurrent callers never characterise
    /// twice.
    timing_table_fill: Mutex<()>,
    /// Number of characterisation passes [`DesignedFleet::timing_table`]
    /// actually ran (0 when the table was seeded by a design flow).
    characterization_passes: AtomicUsize,
}

impl DesignedFleet {
    /// Validates and freezes a fleet design (application order must match
    /// the allocation's indices).
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidConfig`] if the applications use different
    ///   sampling periods, the fleet is empty, or the bus does not offer
    ///   enough static slots for the allocation.
    pub fn new(
        apps: Vec<ControlApplication>,
        allocation: SlotAllocation,
        bus_config: FlexRayConfig,
    ) -> Result<Self> {
        if apps.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "a fleet needs at least one application".to_string(),
            });
        }
        let period = apps[0].spec().period;
        if apps.iter().any(|a| (a.spec().period - period).abs() > 1e-12) {
            return Err(CoreError::InvalidConfig {
                reason: "all applications must share the sampling period".to_string(),
            });
        }
        if allocation.slot_count() > bus_config.static_slot_count {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "allocation needs {} static slots but the bus offers only {}",
                    allocation.slot_count(),
                    bus_config.static_slot_count
                ),
            });
        }
        let runtime_apps = apps
            .iter()
            .enumerate()
            .map(|(index, app)| RuntimeApp {
                name: app.name().to_string(),
                threshold: app.spec().threshold,
                slot: allocation.slot_of(index),
                priority: app.spec().deadline,
            })
            .collect();
        Ok(DesignedFleet {
            apps,
            allocation,
            bus_config,
            runtime_apps,
            period,
            timing_table: OnceLock::new(),
            timing_table_fill: Mutex::new(()),
            characterization_passes: AtomicUsize::new(0),
        })
    }

    /// The full greedy design flow from bare specifications, routed through
    /// the [`crate::FleetDesigner`] pipeline: controllers are synthesised on
    /// the workspace-threaded parallel path, the fleet is characterised
    /// **once**, the configured greedy allocator packs the TT slots (capped
    /// by the bus's static segment) and the result is frozen.
    ///
    /// # Errors
    ///
    /// * Design/characterisation failures from the pipeline.
    /// * Allocation failures from [`cps_sched::allocate_slots`].
    /// * The same validation failures as [`DesignedFleet::new`].
    pub fn design(
        specs: Vec<crate::application::ApplicationSpec>,
        config: &cps_sched::AllocatorConfig,
        bus_config: FlexRayConfig,
    ) -> Result<Self> {
        crate::designer::FleetDesigner::new().design_fleet(specs, config, bus_config)
    }

    /// The exact design path, routed through the [`crate::FleetDesigner`]
    /// pipeline: characterises every application **once** (in parallel),
    /// then solves the slot allocation with the branch-and-bound optimum of
    /// [`cps_sched::allocate_slots_optimal`] — the same characterisation
    /// pass feeds the greedy incumbent seed, the exact search *and* the
    /// fleet's cached [`DesignedFleet::timing_table`] — capped by the bus's
    /// static segment, and freezes the fleet. The result provably uses the
    /// minimum number of TT slots for the derived timing table under the
    /// given dwell model, wait-time method and slot geometry
    /// (`config.strategy` is ignored).
    ///
    /// # Examples
    ///
    /// ```
    /// use cps_core::{case_study, DesignedFleet};
    /// use cps_flexray::FlexRayConfig;
    /// use cps_sched::AllocatorConfig;
    ///
    /// let apps = case_study::derived_fleet()?;
    /// let fleet = DesignedFleet::design_optimal(
    ///     apps,
    ///     &AllocatorConfig::default(),
    ///     FlexRayConfig::paper_case_study(),
    /// )?;
    /// // The slot map is the provable minimum for the bus budget, and the
    /// // characterisation pass that proved it is cached on the fleet —
    /// // later sweeps re-characterise nothing.
    /// assert!(fleet.slot_count() <= fleet.bus_config().static_slot_count);
    /// let table = fleet.timing_table()?;
    /// assert_eq!(table.len(), fleet.app_count());
    /// assert_eq!(fleet.characterization_passes(), 0);
    /// # Ok::<(), cps_core::CoreError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// * Characterisation failures from [`crate::derive_timing_params`].
    /// * [`cps_sched::SchedError::NoFeasibleAllocation`] (wrapped in
    ///   [`CoreError::Sched`]) if no slot map fits the bus.
    /// * The same validation failures as [`DesignedFleet::new`].
    pub fn design_optimal(
        apps: Vec<ControlApplication>,
        config: &cps_sched::AllocatorConfig,
        bus_config: FlexRayConfig,
    ) -> Result<Self> {
        crate::designer::FleetDesigner::new().freeze_optimal(apps, config, bus_config)
    }

    /// The designed applications, in allocation order.
    pub fn apps(&self) -> &[ControlApplication] {
        &self.apps
    }

    /// Number of applications in the fleet.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// The offline slot allocation the fleet was designed with.
    pub fn allocation(&self) -> &SlotAllocation {
        &self.allocation
    }

    /// The FlexRay bus configuration.
    pub fn bus_config(&self) -> FlexRayConfig {
        self.bus_config
    }

    /// Sampling period shared by every application, in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Number of TT slots in the designed allocation.
    pub fn slot_count(&self) -> usize {
        self.allocation.slot_count()
    }

    /// The fleet's characterisation table (Table-I rows in application
    /// order), computed once and `Arc`-shared across every caller.
    ///
    /// The table depends only on the designed controllers and the sampling
    /// period — not on the bus or slot map — so it is cached for the
    /// lifetime of the (immutable) fleet: repeated bus-configuration or
    /// threshold sweeps over the same design skip even the single
    /// characterisation pass. The design flows
    /// ([`DesignedFleet::design`], [`DesignedFleet::design_optimal`]) seed
    /// the cache with the pass they already ran; a fleet frozen directly via
    /// [`DesignedFleet::new`] characterises on first call — exactly once,
    /// even under concurrent access (asserted by the cache test suite).
    ///
    /// # Errors
    ///
    /// Propagates characterisation failures (the cache stays empty, so a
    /// later call retries).
    pub fn timing_table(&self) -> Result<Arc<Vec<AppTimingParams>>> {
        self.timing_table_with(&FleetDesigner::new())
    }

    /// [`DesignedFleet::timing_table`] characterising (on a cache miss)
    /// through the given designer — the entry the bus-configuration sweep
    /// uses so the fill runs on the caller's worker policy.
    ///
    /// # Errors
    ///
    /// As [`DesignedFleet::timing_table`].
    pub fn timing_table_with(&self, designer: &FleetDesigner) -> Result<Arc<Vec<AppTimingParams>>> {
        if let Some(table) = self.timing_table.get() {
            return Ok(Arc::clone(table));
        }
        // Double-checked fill under a mutex: concurrent first callers block
        // here instead of characterising redundantly. The guard protects no
        // data, so a poisoned lock (a caller panicked mid-fill) is safe to
        // enter — required for the documented retry-after-failure contract.
        let _guard = self
            .timing_table_fill
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(table) = self.timing_table.get() {
            return Ok(Arc::clone(table));
        }
        let table = Arc::new(designer.characterize(&self.apps)?);
        self.characterization_passes.fetch_add(1, Ordering::Relaxed);
        let _ = self.timing_table.set(Arc::clone(&table));
        Ok(table)
    }

    /// Number of characterisation passes [`DesignedFleet::timing_table`]
    /// actually ran on this fleet: stays 0 for design-flow-seeded fleets and
    /// never exceeds 1 — the observable behind the "characterise once"
    /// guarantee.
    pub fn characterization_passes(&self) -> usize {
        self.characterization_passes.load(Ordering::Relaxed)
    }

    /// Seeds the characterisation cache with a table the design flow already
    /// computed (rows in application order). A no-op if the cache is filled.
    pub(crate) fn seed_timing_table(&self, table: Vec<AppTimingParams>) {
        let _ = self.timing_table.set(Arc::new(table));
    }

    /// Per-application runtime configuration derived from the designed
    /// allocation.
    pub(crate) fn runtime_apps(&self) -> &[RuntimeApp] {
        &self.runtime_apps
    }

    /// Spawns a co-simulation engine over this design: the engine holds
    /// only mutable scratch (kernel states, runtime phases, bus state) and
    /// shares everything immutable through the [`Arc`].
    ///
    /// # Errors
    ///
    /// Propagates bus-construction failures.
    pub fn engine(self: &Arc<Self>) -> Result<CoSimulation> {
        CoSimulation::from_fleet(Arc::clone(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    fn designed() -> Arc<DesignedFleet> {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        Arc::new(
            DesignedFleet::new(apps, allocation, FlexRayConfig::paper_case_study()).unwrap(),
        )
    }

    #[test]
    fn engines_share_the_design() {
        let fleet = designed();
        let engine_a = fleet.engine().unwrap();
        let engine_b = fleet.engine().unwrap();
        assert!(Arc::ptr_eq(engine_a.fleet(), &fleet));
        assert!(Arc::ptr_eq(engine_a.fleet(), engine_b.fleet()));
        // 1 local + 2 engines — no hidden deep clones of the design.
        assert_eq!(Arc::strong_count(&fleet), 3);
        assert_eq!(fleet.app_count(), 6);
        assert!(fleet.slot_count() >= 1);
        assert!((fleet.period() - case_study::CASE_STUDY_PERIOD).abs() < 1e-15);
    }

    #[test]
    fn design_optimal_never_uses_more_slots_than_the_greedy_design() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let config = cps_sched::AllocatorConfig::default();
        let greedy = cps_sched::allocate_slots(&table, &config).unwrap();
        let fleet = Arc::new(
            DesignedFleet::design_optimal(apps, &config, FlexRayConfig::paper_case_study())
                .unwrap(),
        );
        assert!(fleet.slot_count() <= greedy.slot_count());
        assert!(fleet.allocation().verify(&table).unwrap());
        // The optimal design is a drop-in fleet: engines spawn and run.
        let mut engine = fleet.engine().unwrap();
        engine.inject_disturbances().unwrap();
        let trace = engine.run(1.0).unwrap();
        assert_eq!(trace.apps.len(), fleet.app_count());

        // A bus with a single static slot caps the search; the derived
        // fleet needs more than one slot, so the design must fail cleanly.
        let apps = case_study::derived_fleet().unwrap();
        let tiny_bus = FlexRayConfig {
            static_slot_count: 1,
            ..FlexRayConfig::paper_case_study()
        };
        if fleet.slot_count() > 1 {
            assert!(DesignedFleet::design_optimal(apps, &config, tiny_bus).is_err());
        }
    }

    #[test]
    fn validation_mirrors_the_engine_rules() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        // Empty fleet.
        assert!(DesignedFleet::new(
            vec![],
            allocation.clone(),
            FlexRayConfig::paper_case_study()
        )
        .is_err());
        // Bus with too few static slots.
        let tiny_bus = FlexRayConfig {
            cycle_length: 0.005,
            static_slot_count: 0,
            static_slot_length: 0.0002,
            minislot_count: 60,
            minislot_length: 0.00005,
        };
        assert!(DesignedFleet::new(apps, allocation, tiny_bus).is_err());
    }
}
