//! Batched, parallel multi-scenario co-simulation.
//!
//! The paper's design-space questions — how large a disturbance can the
//! fleet absorb, how tight can the thresholds be, how many TT slots does a
//! bigger fleet need — all reduce to running *many* co-simulations that
//! differ only in a few parameters. [`ScenarioBatch`] makes that a
//! first-class workload: it fans a list of [`ScenarioSpec`]s out over worker
//! threads, where each worker builds **one** [`CoSimulation`] and then
//! `reset()`s-and-reruns it per scenario, so the controller design and bus
//! construction costs are paid once per thread rather than once per
//! scenario, and every step inside is an allocation-free kernel step.
//!
//! Inside a chunk, runs of consecutive scenarios without bus-config or
//! slot-map overrides are packed into the lanes of a batched engine
//! (`crate::batch::BatchCoSim`) and stepped together — one batched kernel
//! sweep per period across all packed scenarios
//! ([`ScenarioBatch::with_lane_width`]).
//!
//! Determinism: each scenario is simulated from a full reset (or a freshly
//! reset lane), so its [`ScenarioOutcome`] depends only on its spec.
//! Scenarios are partitioned into contiguous index chunks and results are
//! stitched back in input order, which makes the output independent of the
//! worker count *and* the lane width — properties the test suite asserts.

use crate::application::ControlApplication;
use crate::batch::BatchCoSim;
use crate::cosim::{CoSimTrace, CoSimulation, RunMetrics};
use crate::error::{CoreError, Result};
use crate::fleet::DesignedFleet;
use cps_control::CommunicationMode;
use cps_flexray::FlexRayConfig;
use cps_sched::SlotAllocation;
use std::sync::Arc;

/// One point of a scenario sweep: how this run differs from the designed
/// fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Label carried into the outcome (for reports).
    pub label: String,
    /// Factor applied to every application's disturbance (the designed
    /// vectors, or [`ScenarioSpec::disturbances`] when set).
    pub disturbance_scale: f64,
    /// Factor applied to every application's switching threshold `E_th`.
    pub threshold_scale: f64,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Per-application disturbance vectors overriding the designed ones
    /// (one vector per application, each matching its plant order).
    pub disturbances: Option<Vec<Vec<f64>>>,
    /// Slot-map override: run this scenario under a different offline slot
    /// allocation than the fleet was designed with.
    pub allocation: Option<SlotAllocation>,
    /// Bus-configuration override: run this scenario on a different FlexRay
    /// cycle (cycle length, static-segment size) than the fleet was
    /// designed for. Usually paired with [`ScenarioSpec::allocation`] so the
    /// slot map fits the overridden static segment.
    pub bus_config: Option<FlexRayConfig>,
}

impl ScenarioSpec {
    /// The nominal scenario: designed disturbances, thresholds and slot map.
    pub fn nominal(duration: f64) -> Self {
        ScenarioSpec {
            label: "nominal".to_string(),
            disturbance_scale: 1.0,
            threshold_scale: 1.0,
            duration,
            disturbances: None,
            allocation: None,
            bus_config: None,
        }
    }

    /// Returns the scenario with per-application disturbance vectors
    /// replacing the designed ones (still subject to
    /// [`ScenarioSpec::disturbance_scale`]).
    #[must_use]
    pub fn with_disturbances(mut self, disturbances: Vec<Vec<f64>>) -> Self {
        self.disturbances = Some(disturbances);
        self
    }

    /// Returns the scenario running under `allocation` instead of the
    /// fleet's designed slot map.
    #[must_use]
    pub fn with_allocation(mut self, allocation: SlotAllocation) -> Self {
        self.allocation = Some(allocation);
        self
    }

    /// Returns the scenario running on `bus_config` instead of the fleet's
    /// designed FlexRay cycle.
    #[must_use]
    pub fn with_bus_config(mut self, bus_config: FlexRayConfig) -> Self {
        self.bus_config = Some(bus_config);
        self
    }

    /// A disturbance sweep: `count` scenarios with the disturbance scaled
    /// linearly from `lo` to `hi` (inclusive), nominal thresholds.
    pub fn disturbance_sweep(lo: f64, hi: f64, count: usize, duration: f64) -> Vec<Self> {
        (0..count)
            .map(|i| {
                let scale = lerp(lo, hi, i, count);
                ScenarioSpec {
                    label: format!("disturbance x{scale:.3}"),
                    disturbance_scale: scale,
                    ..ScenarioSpec::nominal(duration)
                }
            })
            .collect()
    }

    /// A threshold sweep: `count` scenarios with every switching threshold
    /// `E_th` scaled linearly from `lo` to `hi` (inclusive), nominal
    /// disturbances.
    pub fn threshold_sweep(lo: f64, hi: f64, count: usize, duration: f64) -> Vec<Self> {
        (0..count)
            .map(|i| {
                let scale = lerp(lo, hi, i, count);
                ScenarioSpec {
                    label: format!("threshold x{scale:.3}"),
                    threshold_scale: scale,
                    ..ScenarioSpec::nominal(duration)
                }
            })
            .collect()
    }

    /// The full disturbance × threshold grid (row-major: the threshold axis
    /// varies fastest), rounding out the sweep helpers for two-axis
    /// design-space exploration.
    pub fn grid(
        disturbance_scales: &[f64],
        threshold_scales: &[f64],
        duration: f64,
    ) -> Vec<Self> {
        disturbance_scales
            .iter()
            .flat_map(|&disturbance| {
                threshold_scales.iter().map(move |&threshold| ScenarioSpec {
                    label: format!("disturbance x{disturbance:.3} / threshold x{threshold:.3}"),
                    disturbance_scale: disturbance,
                    threshold_scale: threshold,
                    ..ScenarioSpec::nominal(duration)
                })
            })
            .collect()
    }

    /// A slot-map sweep: one nominal scenario per candidate allocation —
    /// the workload that makes the shared-immutable fleet design pay off,
    /// since every scenario re-plumbs the runtime's slot map.
    pub fn slot_map_sweep(
        allocations: impl IntoIterator<Item = SlotAllocation>,
        duration: f64,
    ) -> Vec<Self> {
        allocations
            .into_iter()
            .enumerate()
            .map(|(index, allocation)| {
                ScenarioSpec {
                    label: format!(
                        "slot map #{index} ({} slots, {} model)",
                        allocation.slot_count(),
                        allocation.model
                    ),
                    ..ScenarioSpec::nominal(duration)
                }
                .with_allocation(allocation)
            })
            .collect()
    }
}

/// Linear interpolation over `count` inclusive sweep points.
fn lerp(lo: f64, hi: f64, index: usize, count: usize) -> f64 {
    let t = if count <= 1 { 0.0 } else { index as f64 / (count - 1) as f64 };
    lo + t * (hi - lo)
}

/// The bus-configuration design-space axis: a cross product of cycle
/// lengths, static-segment sizes and static slot lengths Ψ (equivalently,
/// frame payload sizes) over a base FlexRay configuration, expanded into
/// per-bus slot-map candidates (every greedy heuristic of
/// [`cps_sched::AllocatorConfig::sweep_matrix`] *plus* the exact
/// branch-and-bound optimum) and from there into [`ScenarioSpec`]s.
///
/// This rounds out the sweep constructors: where
/// [`ScenarioSpec::slot_map_sweep`] varies only the slot map on the designed
/// bus, `BusConfigSweep` varies the bus itself — how short can the cycle be,
/// how few static slots does the fleet really need, how much payload can a
/// frame carry — with the allocator re-run under each candidate bus's slot
/// budget *and* slot geometry: a longer Ψ both shrinks how many slots fit
/// the cycle and stretches every per-slot occupancy the wait-time analysis
/// sees (via [`cps_sched::SlotTiming`], derived relative to the base
/// configuration's Ψ).
///
/// # Example
///
/// ```
/// use cps_core::{case_study, BusConfigSweep};
/// use cps_flexray::FlexRayConfig;
///
/// let base = FlexRayConfig::paper_case_study();
/// let sweep = BusConfigSweep::new(base)
///     .with_cycle_lengths(vec![0.005, 0.010])
///     .with_static_slot_counts(vec![4, 10])
///     .with_slot_lengths(vec![0.0002, 0.0005]);
/// // 10 slots of 0.5 ms overflow the 5 ms cycle's static segment, so that
/// // combination is skipped; the rest survive validation.
/// let configs = sweep.configs();
/// assert!(configs.len() < 2 * 2 * 2);
/// assert!(configs.iter().all(|c| c.validate().is_ok()));
/// // Expansion packs the published Table-I fleet under every candidate bus.
/// let table = case_study::paper_table1();
/// let scenarios = sweep.scenarios(&table, &cps_sched::AllocatorConfig::default(), 1.0);
/// assert!(!scenarios.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BusConfigSweep {
    /// Base configuration supplying the parameters that are not swept (its
    /// static slot length is also the Ψ baseline the per-slot transmission
    /// overhead is measured against).
    pub base: FlexRayConfig,
    /// Candidate cycle lengths in seconds (empty = keep the base value).
    pub cycle_lengths: Vec<f64>,
    /// Candidate static-segment sizes in slots (empty = keep the base value).
    pub static_slot_counts: Vec<usize>,
    /// Candidate static slot lengths Ψ in seconds (empty = keep the base
    /// value). Fill from frame payload sizes with
    /// [`BusConfigSweep::with_payloads`].
    pub slot_lengths: Vec<f64>,
    /// Worker threads for each candidate's exact branch-and-bound solve.
    /// `1` (the default) keeps the retained sequential solver; any other
    /// value routes through [`cps_sched::allocate_slots_portfolio`]
    /// (`0` = machine parallelism). Every setting yields bit-identical
    /// scenarios — the portfolio's determinism invariant.
    pub allocator_threads: usize,
}

impl BusConfigSweep {
    /// A sweep that (so far) only contains the base configuration.
    pub fn new(base: FlexRayConfig) -> Self {
        BusConfigSweep {
            base,
            cycle_lengths: Vec::new(),
            static_slot_counts: Vec::new(),
            slot_lengths: Vec::new(),
            allocator_threads: 1,
        }
    }

    /// Sets the cycle-length axis.
    #[must_use]
    pub fn with_cycle_lengths(mut self, cycle_lengths: Vec<f64>) -> Self {
        self.cycle_lengths = cycle_lengths;
        self
    }

    /// Sets the static-segment-size axis.
    #[must_use]
    pub fn with_static_slot_counts(mut self, static_slot_counts: Vec<usize>) -> Self {
        self.static_slot_counts = static_slot_counts;
        self
    }

    /// Sets the slot-length axis: candidate static slot lengths Ψ in
    /// seconds.
    #[must_use]
    pub fn with_slot_lengths(mut self, slot_lengths: Vec<f64>) -> Self {
        self.slot_lengths = slot_lengths;
        self
    }

    /// Sets the worker-thread count of each candidate's exact solve
    /// (`1` = sequential solver, `0` = machine parallelism). The expansion
    /// is bit-identical for any setting.
    #[must_use]
    pub fn with_allocator_threads(mut self, allocator_threads: usize) -> Self {
        self.allocator_threads = allocator_threads;
        self
    }

    /// Sets the slot-length axis from frame payload sizes (16-bit words) at
    /// the given bit rate, via the FlexRay timing relation
    /// [`FlexRayConfig::static_slot_length_for_payload`].
    ///
    /// # Errors
    ///
    /// Propagates geometry errors (payload too large, bad bit rate).
    pub fn with_payloads(mut self, payload_words: &[usize], bit_rate: f64) -> Result<Self> {
        self.slot_lengths = payload_words
            .iter()
            .map(|&words| {
                FlexRayConfig::static_slot_length_for_payload(words, bit_rate)
                    .map_err(CoreError::FlexRay)
            })
            .collect::<Result<Vec<f64>>>()?;
        Ok(self)
    }

    /// The *valid* bus configurations of the sweep, row-major with the
    /// slot-length axis varying fastest and the cycle-length axis slowest.
    /// Combinations whose segments do not fit the cycle (or that fail any
    /// other [`FlexRayConfig::validate`] rule — e.g. a payload-derived Ψ
    /// shorter than the minislot) are skipped, mirroring how
    /// [`cps_sched::allocation_sweep`] skips infeasible allocator
    /// configurations.
    pub fn configs(&self) -> Vec<FlexRayConfig> {
        let cycles: &[f64] =
            if self.cycle_lengths.is_empty() { &[self.base.cycle_length] } else { &self.cycle_lengths };
        let slot_counts: &[usize] = if self.static_slot_counts.is_empty() {
            &[self.base.static_slot_count]
        } else {
            &self.static_slot_counts
        };
        let slot_lengths: &[f64] = if self.slot_lengths.is_empty() {
            &[self.base.static_slot_length]
        } else {
            &self.slot_lengths
        };
        let mut configs =
            Vec::with_capacity(cycles.len() * slot_counts.len() * slot_lengths.len());
        for &cycle_length in cycles {
            for &static_slot_count in slot_counts {
                for &static_slot_length in slot_lengths {
                    let candidate = FlexRayConfig {
                        cycle_length,
                        static_slot_count,
                        static_slot_length,
                        ..self.base
                    };
                    if candidate.validate().is_ok() {
                        configs.push(candidate);
                    }
                }
            }
        }
        configs
    }

    /// The per-slot transmission timing a candidate bus presents to the
    /// wait-time analysis: the occupancy overhead is the slot-length excess
    /// over the base configuration's Ψ — the geometry the characterisation
    /// table is assumed to have absorbed — floored at zero (a shorter slot
    /// cannot undercut the characterised control-layer dwell times — see
    /// [`cps_sched::SlotTiming`]). [`BusConfigSweep::scenarios_for_fleet`]
    /// measures against the *fleet's* designed Ψ instead, which is the
    /// baseline its cached table actually absorbed.
    pub fn slot_timing_for(&self, bus: &FlexRayConfig) -> cps_sched::SlotTiming {
        slot_timing_against(self.base.static_slot_length, bus)
    }

    /// Expands the sweep into scenarios: for every valid bus configuration,
    /// the allocator matrix (all greedy heuristics, deduplicated) *and* the
    /// exact branch-and-bound optimum are solved under that bus's static
    /// slot budget *and* slot geometry (the Ψ-derived per-slot transmission
    /// overhead of [`BusConfigSweep::slot_timing_for`] is visible to every
    /// heuristic and to the exact search), and each distinct feasible slot
    /// map becomes one nominal scenario pinned to that bus. Bus
    /// configurations for which no feasible slot map exists are skipped.
    pub fn scenarios(
        &self,
        table: &[cps_sched::AppTimingParams],
        allocator: &cps_sched::AllocatorConfig,
        duration: f64,
    ) -> Vec<ScenarioSpec> {
        self.scenarios_against(self.base.static_slot_length, table, allocator, duration)
    }

    /// [`BusConfigSweep::scenarios`] with an explicit Ψ baseline: the slot
    /// length the characterisation behind `table` absorbed, against which
    /// every candidate's per-slot transmission overhead is measured.
    fn scenarios_against(
        &self,
        baseline_slot_length: f64,
        table: &[cps_sched::AppTimingParams],
        allocator: &cps_sched::AllocatorConfig,
        duration: f64,
    ) -> Vec<ScenarioSpec> {
        let mut scenarios = Vec::new();
        for bus in self.configs() {
            let budgeted = cps_sched::AllocatorConfig {
                max_slots: allocator.max_slots.min(bus.static_slot_count),
                slot_timing: slot_timing_against(baseline_slot_length, &bus),
                ..*allocator
            };
            let mut maps = cps_sched::allocation_sweep(table, &budgeted.sweep_matrix());
            let optimal = if self.allocator_threads == 1 {
                cps_sched::allocate_slots_optimal(table, &budgeted)
            } else {
                cps_sched::allocate_slots_portfolio(
                    table,
                    &budgeted,
                    &cps_sched::PortfolioConfig::with_threads(self.allocator_threads),
                )
            };
            if let Ok(optimal) = optimal {
                if !maps.iter().any(|existing| existing.slots == optimal.slots) {
                    maps.push(optimal);
                }
            }
            for (index, allocation) in maps.into_iter().enumerate() {
                scenarios.push(
                    ScenarioSpec {
                        label: format!(
                            "cycle {:.1} ms / {} static slots / psi {:.1} us · slot map #{index} ({} slots, {} model)",
                            bus.cycle_length * 1e3,
                            bus.static_slot_count,
                            bus.static_slot_length * 1e6,
                            allocation.slot_count(),
                            allocation.model
                        ),
                        ..ScenarioSpec::nominal(duration)
                    }
                    .with_allocation(allocation)
                    .with_bus_config(bus),
                );
            }
        }
        scenarios
    }

    /// Expands the sweep for a designed fleet through the
    /// [`crate::FleetDesigner`] pipeline: the fleet is characterised
    /// **once** (in parallel) and that single timing table is reused for
    /// every candidate bus's allocator matrix and branch-and-bound optimum —
    /// controllers are never re-synthesised and the dwell/wait curves never
    /// re-simulated per bus, which is what makes wide bus-dimensioning
    /// sweeps cheap (the `fleet_design` bench pins the speed-up over
    /// re-characterising per candidate).
    ///
    /// # Errors
    ///
    /// Propagates characterisation failures.
    pub fn scenarios_for(
        &self,
        designer: &crate::designer::FleetDesigner,
        apps: &[ControlApplication],
        allocator: &cps_sched::AllocatorConfig,
        duration: f64,
    ) -> Result<Vec<ScenarioSpec>> {
        let table = designer.characterize(apps)?;
        Ok(self.scenarios(&table, allocator, duration))
    }

    /// Expands the sweep for a designed fleet using its computed-once,
    /// `Arc`-shared characterisation table
    /// ([`DesignedFleet::timing_table_with`]): repeated sweeps over the same
    /// fleet — across *calls*, not just across the candidate buses of one
    /// call — perform **zero** re-characterisation. Fleets frozen by the
    /// design flows come with the table pre-seeded; otherwise the first call
    /// fills the cache (once, through the given designer's worker policy).
    ///
    /// Per-slot transmission overheads are measured against the *fleet's*
    /// designed slot length — the Ψ its characterisation table absorbed —
    /// not the sweep's base, so a sweep whose base geometry differs from
    /// the fleet's cannot under-approximate the candidates' occupancies.
    ///
    /// # Errors
    ///
    /// Propagates characterisation failures from the cache fill.
    pub fn scenarios_for_fleet(
        &self,
        designer: &crate::designer::FleetDesigner,
        fleet: &DesignedFleet,
        allocator: &cps_sched::AllocatorConfig,
        duration: f64,
    ) -> Result<Vec<ScenarioSpec>> {
        let table = fleet.timing_table_with(designer)?;
        Ok(self.scenarios_against(
            fleet.bus_config().static_slot_length,
            &table,
            allocator,
            duration,
        ))
    }
}

/// The per-slot transmission timing of `bus` relative to a baseline slot
/// length Ψ₀: `ΔΨ = max(0, Ψ − Ψ₀)` (see [`cps_sched::SlotTiming`]).
fn slot_timing_against(baseline_slot_length: f64, bus: &FlexRayConfig) -> cps_sched::SlotTiming {
    cps_sched::SlotTiming::new((bus.static_slot_length - baseline_slot_length).max(0.0))
        .expect("validated slot lengths yield a finite non-negative overhead")
}

/// Per-scenario summary returned by the batch engine (the full traces stay
/// inside the workers; summaries keep the batch output small enough to sweep
/// thousands of scenarios).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Index of the scenario in the input list.
    pub index: usize,
    /// Label copied from the spec.
    pub label: String,
    /// `true` if every application met its deadline.
    pub all_deadlines_met: bool,
    /// Measured response time per application (None = never settled).
    pub response_times: Vec<Option<f64>>,
    /// Peak plant-state norm per application over the run.
    pub peak_norms: Vec<f64>,
    /// Number of periods each application spent on TT communication.
    pub tt_periods: Vec<usize>,
    /// Static-slot transmissions on the bus over the run.
    pub static_transmissions: u64,
    /// Dynamic-segment transmissions on the bus over the run.
    pub dynamic_transmissions: u64,
}

impl ScenarioOutcome {
    /// The lane-batched twin of [`ScenarioOutcome::from_trace`], fed from
    /// the online metrics instead of a materialised trace. Every field is
    /// bit-identical: the metrics path computes the same response times,
    /// pre-step peak norms, TT-period counts and bus counters the trace
    /// extraction folds out of the recorded points.
    fn from_metrics(index: usize, label: String, metrics: &RunMetrics) -> Self {
        ScenarioOutcome {
            index,
            label,
            all_deadlines_met: metrics.all_deadlines_met(),
            response_times: metrics.response_times.clone(),
            peak_norms: metrics.peak_norms.clone(),
            tt_periods: metrics.tt_periods.iter().map(|&periods| periods as usize).collect(),
            static_transmissions: metrics.bus.static_transmissions,
            dynamic_transmissions: metrics.bus.dynamic_transmissions,
        }
    }

    fn from_trace(index: usize, label: String, trace: &CoSimTrace) -> Self {
        ScenarioOutcome {
            index,
            label,
            all_deadlines_met: trace.all_deadlines_met(),
            response_times: trace.apps.iter().map(|a| a.response_time).collect(),
            peak_norms: trace
                .apps
                .iter()
                .map(|a| a.points.iter().map(|p| p.norm).fold(0.0, f64::max))
                .collect(),
            tt_periods: trace
                .apps
                .iter()
                .map(|a| {
                    a.points.iter().filter(|p| p.mode == CommunicationMode::TimeTriggered).count()
                })
                .collect(),
            static_transmissions: trace.bus_statistics.static_transmissions,
            dynamic_transmissions: trace.bus_statistics.dynamic_transmissions,
        }
    }
}

/// The parallel scenario engine: an [`Arc`]-shared [`DesignedFleet`] fanned
/// out over worker threads. Workers never clone the designed
/// [`ControlApplication`]s — each one spawns a [`CoSimulation`] holding only
/// mutable scratch over the shared design.
///
/// # Examples
///
/// ```
/// use cps_core::{case_study, DesignedFleet, ScenarioBatch, ScenarioSpec};
/// use cps_flexray::FlexRayConfig;
/// use std::sync::Arc;
///
/// let fleet = Arc::new(DesignedFleet::design(
///     case_study::derived_fleet_specs(),
///     &cps_sched::AllocatorConfig::default(),
///     FlexRayConfig::paper_case_study(),
/// )?);
/// let batch = ScenarioBatch::from_fleet(fleet)?;
/// // Three disturbance scales, each co-simulated from a full reset; the
/// // outcome is bit-identical for any worker count.
/// let outcomes = batch.run(&ScenarioSpec::disturbance_sweep(0.5, 1.5, 3, 0.5))?;
/// assert_eq!(outcomes.len(), 3);
/// assert!(outcomes.iter().all(|o| o.response_times.len() == 6));
/// # Ok::<(), cps_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBatch {
    fleet: Arc<DesignedFleet>,
    threads: usize,
    lane_width: usize,
}

impl ScenarioBatch {
    /// Creates the engine from fleet parts. Convenience for
    /// [`DesignedFleet::new`] + [`ScenarioBatch::from_fleet`].
    ///
    /// # Errors
    ///
    /// Propagates fleet validation failures.
    pub fn new(
        apps: Vec<ControlApplication>,
        allocation: SlotAllocation,
        bus_config: FlexRayConfig,
    ) -> Result<Self> {
        ScenarioBatch::from_fleet(Arc::new(DesignedFleet::new(apps, allocation, bus_config)?))
    }

    /// Creates the engine over an existing shared design. The configuration
    /// is validated by building one trial engine up front, so `run` cannot
    /// fail on template errors.
    ///
    /// # Errors
    ///
    /// Propagates engine-construction failures.
    pub fn from_fleet(fleet: Arc<DesignedFleet>) -> Result<Self> {
        fleet.engine()?;
        Ok(ScenarioBatch { fleet, threads: 0, lane_width: 4 })
    }

    /// The shared fleet design the batch fans out.
    pub fn fleet(&self) -> &Arc<DesignedFleet> {
        &self.fleet
    }

    /// Sets the worker-thread count; `0` (the default) uses the machine's
    /// available parallelism. The outcome of a batch is independent of this
    /// setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the lane width of each worker's batched stepper (clamped to at
    /// least 1; the default is 4): runs of consecutive scenarios without
    /// bus-config or slot-map overrides are packed into the lanes of one
    /// [`cps_control::BatchStepKernel`] per application and stepped
    /// together; scenarios carrying overrides take the scalar path. Width 1
    /// disables packing entirely. Like the thread count, this is a
    /// throughput knob only — the outcomes are bit-identical for any lane
    /// width.
    #[must_use]
    pub fn with_lane_width(mut self, lane_width: usize) -> Self {
        self.lane_width = lane_width.max(1);
        self
    }

    /// The worker count a run will actually use for `scenario_count`
    /// scenarios.
    pub fn effective_threads(&self, scenario_count: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        configured.clamp(1, scenario_count.max(1))
    }

    /// Runs every scenario and returns the outcomes in input order.
    ///
    /// Scenarios are split into contiguous chunks, one worker per chunk;
    /// each worker owns a single `CoSimulation` that it resets between
    /// scenarios. Results are identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first simulation error in scenario order (invalid
    /// scenario parameters included); scenarios after the failing one in
    /// the same chunk are not executed.
    pub fn run(&self, scenarios: &[ScenarioSpec]) -> Result<Vec<ScenarioOutcome>> {
        if scenarios.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.effective_threads(scenarios.len());
        if workers == 1 {
            let mut outcomes = Vec::with_capacity(scenarios.len());
            run_chunk(&self.fleet, self.lane_width, 0, scenarios, &mut outcomes)?;
            return Ok(outcomes);
        }

        // Contiguous chunks keep the output order (and therefore the result)
        // independent of scheduling; ceil-sized so every scenario is covered.
        let chunk_size = scenarios.len().div_ceil(workers);
        let chunk_results: Vec<Result<Vec<ScenarioOutcome>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = scenarios
                    .chunks(chunk_size)
                    .enumerate()
                    .map(|(chunk_index, chunk)| {
                        let base = chunk_index * chunk_size;
                        scope.spawn(move || {
                            // Worker start-up: mutable scratch only, the
                            // design is shared through the Arc.
                            let mut outcomes = Vec::with_capacity(chunk.len());
                            run_chunk(&self.fleet, self.lane_width, base, chunk, &mut outcomes)?;
                            Ok(outcomes)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scenario worker must not panic"))
                    .collect()
            });

        let mut outcomes = Vec::with_capacity(scenarios.len());
        for chunk in chunk_results {
            outcomes.extend(chunk?);
        }
        Ok(outcomes)
    }
}

/// `true` if the spec can share a lane group: lane contexts run on the
/// fleet's designed bus and slot map, so only override-free specs pack
/// (per-lane disturbance scales/vectors, thresholds and durations are fine).
fn lane_compatible(spec: &ScenarioSpec) -> bool {
    spec.bus_config.is_none() && spec.allocation.is_none()
}

/// Runs one worker's contiguous chunk: maximal runs of consecutive
/// lane-compatible specs are packed into the batched engine (built lazily,
/// once per worker) and stepped together; specs carrying bus/slot overrides
/// run on the scalar engine. Outcomes land in `out` in input order, and the
/// first error in scenario order aborts the chunk — exactly the scalar
/// semantics.
fn run_chunk(
    fleet: &Arc<DesignedFleet>,
    lane_width: usize,
    base: usize,
    specs: &[ScenarioSpec],
    out: &mut Vec<ScenarioOutcome>,
) -> Result<()> {
    let mut engine: Option<CoSimulation> = None;
    let mut batch: Option<BatchCoSim> = None;
    let mut metrics = RunMetrics::default();
    let mut offset = 0;
    while offset < specs.len() {
        if lane_width > 1 && lane_compatible(&specs[offset]) {
            let mut group_len = 1;
            while group_len < lane_width
                && offset + group_len < specs.len()
                && lane_compatible(&specs[offset + group_len])
            {
                group_len += 1;
            }
            let group = &specs[offset..offset + group_len];
            if batch.is_none() {
                batch = Some(BatchCoSim::from_fleet(fleet, lane_width)?);
            }
            let batch = batch.as_mut().expect("just initialised");
            batch.clear();
            for (lane, spec) in group.iter().enumerate() {
                validate_spec(spec)?;
                batch.load_scenario_lane(lane, spec)?;
            }
            batch.run_loaded()?;
            for (lane, spec) in group.iter().enumerate() {
                batch.lane_metrics_into(lane, &mut metrics);
                out.push(ScenarioOutcome::from_metrics(
                    base + offset + lane,
                    spec.label.clone(),
                    &metrics,
                ));
            }
            offset += group_len;
        } else {
            if engine.is_none() {
                engine = Some(fleet.engine()?);
            }
            let engine = engine.as_mut().expect("just initialised");
            out.push(run_one(engine, base + offset, &specs[offset])?);
            offset += 1;
        }
    }
    Ok(())
}

/// The spec validation both the scalar and the lane-batched paths apply, in
/// the same order, before touching an engine.
fn validate_spec(spec: &ScenarioSpec) -> Result<()> {
    if !(spec.disturbance_scale.is_finite()) || spec.disturbance_scale < 0.0 {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "{}: disturbance scale must be finite and non-negative, got {}",
                spec.label, spec.disturbance_scale
            ),
        });
    }
    if !spec.duration.is_finite() || !(spec.duration > 0.0) {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "{}: duration must be finite and positive, got {}",
                spec.label, spec.duration
            ),
        });
    }
    Ok(())
}

fn run_one(engine: &mut CoSimulation, index: usize, spec: &ScenarioSpec) -> Result<ScenarioOutcome> {
    validate_spec(spec)?;
    engine.reset()?;
    // The engine is reused across scenarios, so the bus configuration and
    // slot map must be (re)applied every time: the override if present, else
    // the design's. The bus goes first so the slot map is validated against
    // the static segment it will actually run on.
    let fleet = Arc::clone(engine.fleet());
    engine.set_bus_config(spec.bus_config.unwrap_or_else(|| fleet.bus_config()))?;
    engine.set_allocation(spec.allocation.as_ref().unwrap_or_else(|| fleet.allocation()))?;
    engine.set_threshold_scale(spec.threshold_scale)?;
    match &spec.disturbances {
        None => engine.inject_disturbances_scaled(spec.disturbance_scale)?,
        Some(vectors) => engine.inject_disturbance_vectors(vectors, spec.disturbance_scale)?,
    }
    let trace = engine.run(spec.duration)?;
    Ok(ScenarioOutcome::from_trace(index, spec.label.clone(), &trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    fn batch() -> ScenarioBatch {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        ScenarioBatch::new(apps, allocation, FlexRayConfig::paper_case_study()).unwrap()
    }

    #[test]
    fn lane_width_does_not_change_the_outcomes() {
        let batch = batch();
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        // A mixed list: laneable grid points interrupted mid-stream by a
        // slot-map override (scalar path), so packing has to split groups
        // and re-pack ragged remainders around it.
        let mut scenarios = ScenarioSpec::grid(&[0.6, 1.0, 1.4], &[0.9, 1.1], 1.0);
        scenarios.insert(3, ScenarioSpec::nominal(1.0).with_allocation(allocation));
        let scalar = batch.clone().with_lane_width(1).run(&scenarios).unwrap();
        for lanes in [2, 3, 4, 8] {
            for threads in [1, 2] {
                let outcomes = batch
                    .clone()
                    .with_lane_width(lanes)
                    .with_threads(threads)
                    .run(&scenarios)
                    .unwrap();
                assert_eq!(
                    scalar, outcomes,
                    "lane width {lanes} × {threads} threads changed the outcomes"
                );
            }
        }
    }

    #[test]
    fn sweep_constructor_spans_the_range() {
        let sweep = ScenarioSpec::disturbance_sweep(0.5, 2.0, 4, 1.0);
        assert_eq!(sweep.len(), 4);
        assert!((sweep[0].disturbance_scale - 0.5).abs() < 1e-12);
        assert!((sweep[3].disturbance_scale - 2.0).abs() < 1e-12);
        let single = ScenarioSpec::disturbance_sweep(0.5, 2.0, 1, 1.0);
        assert!((single[0].disturbance_scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_sweep_and_grid_constructors() {
        let sweep = ScenarioSpec::threshold_sweep(0.5, 1.5, 3, 1.0);
        assert_eq!(sweep.len(), 3);
        assert!((sweep[0].threshold_scale - 0.5).abs() < 1e-12);
        assert!((sweep[1].threshold_scale - 1.0).abs() < 1e-12);
        assert!((sweep[2].threshold_scale - 1.5).abs() < 1e-12);
        assert!(sweep.iter().all(|s| s.disturbance_scale == 1.0));

        let grid = ScenarioSpec::grid(&[0.5, 2.0], &[0.8, 1.0, 1.2], 1.0);
        assert_eq!(grid.len(), 6);
        // Row-major: the threshold axis varies fastest.
        assert!((grid[0].disturbance_scale - 0.5).abs() < 1e-12);
        assert!((grid[0].threshold_scale - 0.8).abs() < 1e-12);
        assert!((grid[2].threshold_scale - 1.2).abs() < 1e-12);
        assert!((grid[3].disturbance_scale - 2.0).abs() < 1e-12);
        // All labels are distinct.
        let labels: std::collections::HashSet<_> = grid.iter().map(|s| &s.label).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn slot_map_sweep_and_disturbance_override_change_the_outcome() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let nominal_allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        // A contention-free allocation: every application owns its own slot
        // (the paper's bus offers enough static slots for the fleet).
        let dedicated = cps_sched::SlotAllocation {
            slots: (0..apps.len()).map(|index| vec![index]).collect(),
            model: nominal_allocation.model,
            method: nominal_allocation.method,
        };
        assert!(
            dedicated.slot_count()
                <= FlexRayConfig::paper_case_study().static_slot_count
        );
        let batch = batch();

        let scenarios = ScenarioSpec::slot_map_sweep(
            [nominal_allocation.clone(), dedicated.clone()],
            2.0,
        );
        assert_eq!(scenarios.len(), 2);
        let outcomes = batch.run(&scenarios).unwrap();
        // The nominal slot map reproduces the nominal scenario exactly.
        let nominal = batch.run(&[ScenarioSpec::nominal(2.0)]).unwrap();
        assert_eq!(outcomes[0].response_times, nominal[0].response_times);
        assert_eq!(outcomes[0].tt_periods, nominal[0].tt_periods);
        // Removing all slot contention changes the TT usage pattern.
        assert_ne!(outcomes[1].tt_periods, outcomes[0].tt_periods);

        // Per-app disturbance vectors: zero disturbance everywhere keeps
        // every loop in ET; hitting only the first app leaves the others
        // untouched.
        let fleet_orders: Vec<usize> =
            batch.fleet().apps().iter().map(|a| a.spec().plant.order()).collect();
        let zeros: Vec<Vec<f64>> =
            fleet_orders.iter().map(|&order| vec![0.0; order]).collect();
        let mut first_only = zeros.clone();
        first_only[0] = batch.fleet().apps()[0].spec().disturbance.clone();
        let outcomes = batch
            .run(&[
                ScenarioSpec::nominal(1.0).with_disturbances(zeros),
                ScenarioSpec::nominal(1.0).with_disturbances(first_only),
            ])
            .unwrap();
        assert!(outcomes[0].peak_norms.iter().all(|&n| n == 0.0));
        assert!(outcomes[1].peak_norms[0] > 0.0);
        assert!(outcomes[1].peak_norms[1..].iter().all(|&n| n == 0.0));

        // Wrong vector count is rejected.
        let bad = ScenarioSpec::nominal(1.0).with_disturbances(vec![vec![0.0]]);
        assert!(batch.run(std::slice::from_ref(&bad)).is_err());
        // An allocation the bus cannot host is rejected.
        let slots_offered = FlexRayConfig::paper_case_study().static_slot_count;
        let too_wide = cps_sched::SlotAllocation {
            slots: (0..slots_offered + 1).map(|i| vec![i % apps.len()]).collect(),
            model: nominal_allocation.model,
            method: nominal_allocation.method,
        };
        let bad = ScenarioSpec::nominal(1.0).with_allocation(too_wide);
        assert!(batch.run(std::slice::from_ref(&bad)).is_err());
    }

    #[test]
    fn bus_config_sweep_expands_and_changes_the_outcome() {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let batch = batch();
        let base = FlexRayConfig::paper_case_study();

        // The axis expands into valid configurations only: a 1 ms cycle
        // cannot host the paper's 2 ms static segment and is skipped.
        let sweep = BusConfigSweep::new(base)
            .with_cycle_lengths(vec![0.001, 0.005, 0.010])
            .with_static_slot_counts(vec![6, 10]);
        let configs = sweep.configs();
        assert_eq!(configs.len(), 4);
        assert!(configs.iter().all(|c| c.validate().is_ok()));
        assert!(configs.iter().all(|c| c.cycle_length >= 0.005));

        // Scenario expansion: every scenario pins a bus and a slot map that
        // fits it; labels are unique.
        let scenarios =
            sweep.scenarios(&table, &cps_sched::AllocatorConfig::default(), 1.0);
        assert!(!scenarios.is_empty());
        for spec in &scenarios {
            let bus = spec.bus_config.expect("bus pinned");
            let allocation = spec.allocation.as_ref().expect("slot map pinned");
            assert!(allocation.slot_count() <= bus.static_slot_count);
        }
        let labels: std::collections::HashSet<_> =
            scenarios.iter().map(|s| &s.label).collect();
        assert_eq!(labels.len(), scenarios.len());
        // The branch-and-bound optimum is part of every bus's candidate set.
        let optimal = cps_sched::allocate_slots_optimal(
            &table,
            &cps_sched::AllocatorConfig::default(),
        )
        .unwrap();
        assert!(scenarios
            .iter()
            .any(|s| s.allocation.as_ref().unwrap().slot_count() == optimal.slot_count()));

        // Running under the base bus with the designed allocation matches
        // the nominal scenario bit for bit; a starved dynamic segment (two
        // minislots = one ET frame per cycle) builds a backlog and delivers
        // strictly fewer ET messages inside the window.
        let fleet_allocation = batch.fleet().allocation().clone();
        let same_bus = ScenarioSpec::nominal(2.0)
            .with_bus_config(base)
            .with_allocation(fleet_allocation.clone());
        let starved_bus = ScenarioSpec::nominal(2.0)
            .with_bus_config(FlexRayConfig { minislot_count: 2, ..base })
            .with_allocation(fleet_allocation);
        let outcomes =
            batch.run(&[ScenarioSpec::nominal(2.0), same_bus, starved_bus]).unwrap();
        assert_eq!(outcomes[0].response_times, outcomes[1].response_times);
        assert_eq!(outcomes[0].static_transmissions, outcomes[1].static_transmissions);
        assert_eq!(outcomes[0].dynamic_transmissions, outcomes[1].dynamic_transmissions);
        assert!(outcomes[2].dynamic_transmissions < outcomes[0].dynamic_transmissions);

        // An invalid override is rejected, and the engine recovers for the
        // next scenario in the chunk (single worker: same engine).
        let bad_bus = ScenarioSpec::nominal(1.0)
            .with_bus_config(FlexRayConfig { cycle_length: -1.0, ..base });
        assert!(batch.run(std::slice::from_ref(&bad_bus)).is_err());
        let recovered = batch
            .clone()
            .with_threads(1)
            .run(&[ScenarioSpec::nominal(2.0)])
            .unwrap();
        assert_eq!(recovered[0].response_times, outcomes[0].response_times);
    }

    #[test]
    fn slot_length_axis_completes_the_bus_design_space() {
        let table = case_study::paper_table1();
        let base = FlexRayConfig::paper_case_study();

        // Third axis: slot length Ψ. The 5 ms cycle keeps its 3 ms dynamic
        // segment, so 10 slots of 0.5 ms (5 ms static) cannot fit — only the
        // 4-slot variant of the stretched Ψ survives validation.
        let sweep = BusConfigSweep::new(base)
            .with_static_slot_counts(vec![4, 10])
            .with_slot_lengths(vec![0.0002, 0.0005]);
        let configs = sweep.configs();
        assert_eq!(configs.len(), 3);
        assert!(configs
            .iter()
            .all(|c| c.static_segment_length() + c.dynamic_segment_length()
                <= c.cycle_length + 1e-12));

        // The derived slot timing is the Ψ excess over the base (floored at
        // zero for the baseline Ψ itself).
        for config in &configs {
            let timing = sweep.slot_timing_for(config);
            if config.static_slot_length > base.static_slot_length {
                assert!((timing.overhead() - 0.0003).abs() < 1e-12);
            } else {
                assert_eq!(timing.overhead(), 0.0);
            }
        }

        // Scenario expansion: every slot map fits its bus's budget and
        // verifies under that bus's geometry; the conservative 5-slot maps
        // are gone from the 4-slot buses. Labels stay unique because they
        // carry Ψ.
        let scenarios = sweep.scenarios(&table, &cps_sched::AllocatorConfig::default(), 1.0);
        assert!(!scenarios.is_empty());
        let mut saw_stretched_bus = false;
        for spec in &scenarios {
            let bus = spec.bus_config.expect("bus pinned");
            let allocation = spec.allocation.as_ref().expect("slot map pinned");
            assert!(allocation.slot_count() <= bus.static_slot_count);
            assert!(allocation
                .verify_with(&table, sweep.slot_timing_for(&bus))
                .expect("analysis runs"));
            if bus.static_slot_length > base.static_slot_length {
                saw_stretched_bus = true;
            }
        }
        assert!(saw_stretched_bus, "the stretched-Ψ bus must host feasible slot maps");
        let labels: std::collections::HashSet<_> = scenarios.iter().map(|s| &s.label).collect();
        assert_eq!(labels.len(), scenarios.len());

        // The payload-word constructor maps frame sizes through the FlexRay
        // timing relation; an oversized payload is rejected.
        let by_payload = BusConfigSweep::new(base)
            .with_payloads(&[64, 127], cps_flexray::DEFAULT_BIT_RATE)
            .unwrap();
        assert_eq!(by_payload.slot_lengths.len(), 2);
        assert!(by_payload.slot_lengths[0] < by_payload.slot_lengths[1]);
        assert!(by_payload.slot_lengths.iter().all(|&psi| psi > base.minislot_length));
        assert!(BusConfigSweep::new(base)
            .with_payloads(&[500], cps_flexray::DEFAULT_BIT_RATE)
            .is_err());
    }

    #[test]
    fn outcomes_are_independent_of_thread_count() {
        let batch = batch();
        let scenarios = ScenarioSpec::disturbance_sweep(0.2, 1.5, 6, 1.5);
        let serial = batch.clone().with_threads(1).run(&scenarios).unwrap();
        let parallel = batch.clone().with_threads(3).run(&scenarios).unwrap();
        let oversubscribed = batch.with_threads(16).run(&scenarios).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, oversubscribed);
        assert_eq!(serial.len(), 6);
        for (index, outcome) in serial.iter().enumerate() {
            assert_eq!(outcome.index, index);
            assert_eq!(outcome.response_times.len(), 6);
        }
    }

    #[test]
    fn nominal_scenario_matches_direct_cosimulation() {
        let batch = batch();
        let outcomes = batch.run(&[ScenarioSpec::nominal(2.0)]).unwrap();
        assert_eq!(outcomes.len(), 1);

        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        cosim.inject_disturbances().unwrap();
        let trace = cosim.run(2.0).unwrap();
        let direct = ScenarioOutcome::from_trace(0, "nominal".to_string(), &trace);
        assert_eq!(outcomes[0], direct);
    }

    #[test]
    fn empty_and_invalid_batches() {
        let batch = batch();
        assert!(batch.run(&[]).unwrap().is_empty());
        let bad = ScenarioSpec {
            label: "bad".to_string(),
            disturbance_scale: -1.0,
            ..ScenarioSpec::nominal(1.0)
        };
        assert!(batch.run(std::slice::from_ref(&bad)).is_err());
        let endless = ScenarioSpec {
            label: "endless".to_string(),
            duration: f64::INFINITY,
            ..ScenarioSpec::nominal(1.0)
        };
        assert!(batch.run(std::slice::from_ref(&endless)).is_err());
        assert_eq!(batch.effective_threads(0), 1);
        assert!(batch.effective_threads(100) >= 1);
    }
}
