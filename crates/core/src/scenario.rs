//! Batched, parallel multi-scenario co-simulation.
//!
//! The paper's design-space questions — how large a disturbance can the
//! fleet absorb, how tight can the thresholds be, how many TT slots does a
//! bigger fleet need — all reduce to running *many* co-simulations that
//! differ only in a few parameters. [`ScenarioBatch`] makes that a
//! first-class workload: it fans a list of [`ScenarioSpec`]s out over worker
//! threads, where each worker builds **one** [`CoSimulation`] and then
//! `reset()`s-and-reruns it per scenario, so the controller design and bus
//! construction costs are paid once per thread rather than once per
//! scenario, and every step inside is an allocation-free kernel step.
//!
//! Determinism: each scenario is simulated from a full reset, so its
//! [`ScenarioOutcome`] depends only on its spec. Scenarios are partitioned
//! into contiguous index chunks and results are stitched back in input
//! order, which makes the output independent of the worker count — a
//! property the test suite asserts.

use crate::application::ControlApplication;
use crate::cosim::{CoSimTrace, CoSimulation};
use crate::error::{CoreError, Result};
use cps_control::CommunicationMode;
use cps_flexray::FlexRayConfig;
use cps_sched::SlotAllocation;

/// One point of a scenario sweep: how this run differs from the designed
/// fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Label carried into the outcome (for reports).
    pub label: String,
    /// Factor applied to every application's designed disturbance.
    pub disturbance_scale: f64,
    /// Factor applied to every application's switching threshold `E_th`.
    pub threshold_scale: f64,
    /// Simulated duration in seconds.
    pub duration: f64,
}

impl ScenarioSpec {
    /// The nominal scenario: designed disturbances and thresholds.
    pub fn nominal(duration: f64) -> Self {
        ScenarioSpec {
            label: "nominal".to_string(),
            disturbance_scale: 1.0,
            threshold_scale: 1.0,
            duration,
        }
    }

    /// A disturbance sweep: `count` scenarios with the disturbance scaled
    /// linearly from `lo` to `hi` (inclusive), nominal thresholds.
    pub fn disturbance_sweep(lo: f64, hi: f64, count: usize, duration: f64) -> Vec<Self> {
        (0..count)
            .map(|i| {
                let t = if count <= 1 { 0.0 } else { i as f64 / (count - 1) as f64 };
                let scale = lo + t * (hi - lo);
                ScenarioSpec {
                    label: format!("disturbance x{scale:.3}"),
                    disturbance_scale: scale,
                    threshold_scale: 1.0,
                    duration,
                }
            })
            .collect()
    }
}

/// Per-scenario summary returned by the batch engine (the full traces stay
/// inside the workers; summaries keep the batch output small enough to sweep
/// thousands of scenarios).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Index of the scenario in the input list.
    pub index: usize,
    /// Label copied from the spec.
    pub label: String,
    /// `true` if every application met its deadline.
    pub all_deadlines_met: bool,
    /// Measured response time per application (None = never settled).
    pub response_times: Vec<Option<f64>>,
    /// Peak plant-state norm per application over the run.
    pub peak_norms: Vec<f64>,
    /// Number of periods each application spent on TT communication.
    pub tt_periods: Vec<usize>,
    /// Static-slot transmissions on the bus over the run.
    pub static_transmissions: u64,
    /// Dynamic-segment transmissions on the bus over the run.
    pub dynamic_transmissions: u64,
}

impl ScenarioOutcome {
    fn from_trace(index: usize, label: String, trace: &CoSimTrace) -> Self {
        ScenarioOutcome {
            index,
            label,
            all_deadlines_met: trace.all_deadlines_met(),
            response_times: trace.apps.iter().map(|a| a.response_time).collect(),
            peak_norms: trace
                .apps
                .iter()
                .map(|a| a.points.iter().map(|p| p.norm).fold(0.0, f64::max))
                .collect(),
            tt_periods: trace
                .apps
                .iter()
                .map(|a| {
                    a.points.iter().filter(|p| p.mode == CommunicationMode::TimeTriggered).count()
                })
                .collect(),
            static_transmissions: trace.bus_statistics.static_transmissions,
            dynamic_transmissions: trace.bus_statistics.dynamic_transmissions,
        }
    }
}

/// The parallel scenario engine: a designed fleet plus the bus/allocation
/// template, fanned out over worker threads.
#[derive(Debug, Clone)]
pub struct ScenarioBatch {
    apps: Vec<ControlApplication>,
    allocation: SlotAllocation,
    bus_config: FlexRayConfig,
    threads: usize,
}

impl ScenarioBatch {
    /// Creates the engine. The configuration is validated by building one
    /// trial co-simulation up front, so `run` cannot fail on template
    /// errors.
    ///
    /// # Errors
    ///
    /// Propagates [`CoSimulation::new`] validation failures.
    pub fn new(
        apps: Vec<ControlApplication>,
        allocation: SlotAllocation,
        bus_config: FlexRayConfig,
    ) -> Result<Self> {
        CoSimulation::new(apps.clone(), &allocation, bus_config)?;
        Ok(ScenarioBatch { apps, allocation, bus_config, threads: 0 })
    }

    /// Sets the worker-thread count; `0` (the default) uses the machine's
    /// available parallelism. The outcome of a batch is independent of this
    /// setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker count a run will actually use for `scenario_count`
    /// scenarios.
    pub fn effective_threads(&self, scenario_count: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        configured.clamp(1, scenario_count.max(1))
    }

    /// Runs every scenario and returns the outcomes in input order.
    ///
    /// Scenarios are split into contiguous chunks, one worker per chunk;
    /// each worker owns a single `CoSimulation` that it resets between
    /// scenarios. Results are identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first simulation error in scenario order (invalid
    /// scenario parameters included); scenarios after the failing one in
    /// the same chunk are not executed.
    pub fn run(&self, scenarios: &[ScenarioSpec]) -> Result<Vec<ScenarioOutcome>> {
        if scenarios.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.effective_threads(scenarios.len());
        if workers == 1 {
            let mut engine =
                CoSimulation::new(self.apps.clone(), &self.allocation, self.bus_config)?;
            return scenarios
                .iter()
                .enumerate()
                .map(|(index, spec)| run_one(&mut engine, index, spec))
                .collect();
        }

        // Contiguous chunks keep the output order (and therefore the result)
        // independent of scheduling; ceil-sized so every scenario is covered.
        let chunk_size = scenarios.len().div_ceil(workers);
        let chunk_results: Vec<Result<Vec<ScenarioOutcome>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = scenarios
                    .chunks(chunk_size)
                    .enumerate()
                    .map(|(chunk_index, chunk)| {
                        let base = chunk_index * chunk_size;
                        scope.spawn(move || {
                            let mut engine = CoSimulation::new(
                                self.apps.clone(),
                                &self.allocation,
                                self.bus_config,
                            )?;
                            chunk
                                .iter()
                                .enumerate()
                                .map(|(offset, spec)| run_one(&mut engine, base + offset, spec))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scenario worker must not panic"))
                    .collect()
            });

        let mut outcomes = Vec::with_capacity(scenarios.len());
        for chunk in chunk_results {
            outcomes.extend(chunk?);
        }
        Ok(outcomes)
    }
}

fn run_one(engine: &mut CoSimulation, index: usize, spec: &ScenarioSpec) -> Result<ScenarioOutcome> {
    if !(spec.disturbance_scale.is_finite()) || spec.disturbance_scale < 0.0 {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "{}: disturbance scale must be finite and non-negative, got {}",
                spec.label, spec.disturbance_scale
            ),
        });
    }
    if !spec.duration.is_finite() || !(spec.duration > 0.0) {
        return Err(CoreError::InvalidConfig {
            reason: format!(
                "{}: duration must be finite and positive, got {}",
                spec.label, spec.duration
            ),
        });
    }
    engine.reset()?;
    engine.set_threshold_scale(spec.threshold_scale)?;
    engine.inject_disturbances_scaled(spec.disturbance_scale)?;
    let trace = engine.run(spec.duration)?;
    Ok(ScenarioOutcome::from_trace(index, spec.label.clone(), &trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    fn batch() -> ScenarioBatch {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        ScenarioBatch::new(apps, allocation, FlexRayConfig::paper_case_study()).unwrap()
    }

    #[test]
    fn sweep_constructor_spans_the_range() {
        let sweep = ScenarioSpec::disturbance_sweep(0.5, 2.0, 4, 1.0);
        assert_eq!(sweep.len(), 4);
        assert!((sweep[0].disturbance_scale - 0.5).abs() < 1e-12);
        assert!((sweep[3].disturbance_scale - 2.0).abs() < 1e-12);
        let single = ScenarioSpec::disturbance_sweep(0.5, 2.0, 1, 1.0);
        assert!((single[0].disturbance_scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn outcomes_are_independent_of_thread_count() {
        let batch = batch();
        let scenarios = ScenarioSpec::disturbance_sweep(0.2, 1.5, 6, 1.5);
        let serial = batch.clone().with_threads(1).run(&scenarios).unwrap();
        let parallel = batch.clone().with_threads(3).run(&scenarios).unwrap();
        let oversubscribed = batch.with_threads(16).run(&scenarios).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, oversubscribed);
        assert_eq!(serial.len(), 6);
        for (index, outcome) in serial.iter().enumerate() {
            assert_eq!(outcome.index, index);
            assert_eq!(outcome.response_times.len(), 6);
        }
    }

    #[test]
    fn nominal_scenario_matches_direct_cosimulation() {
        let batch = batch();
        let outcomes = batch.run(&[ScenarioSpec::nominal(2.0)]).unwrap();
        assert_eq!(outcomes.len(), 1);

        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        let mut cosim =
            CoSimulation::new(apps, &allocation, FlexRayConfig::paper_case_study()).unwrap();
        cosim.inject_disturbances().unwrap();
        let trace = cosim.run(2.0).unwrap();
        let direct = ScenarioOutcome::from_trace(0, "nominal".to_string(), &trace);
        assert_eq!(outcomes[0], direct);
    }

    #[test]
    fn empty_and_invalid_batches() {
        let batch = batch();
        assert!(batch.run(&[]).unwrap().is_empty());
        let bad = ScenarioSpec {
            label: "bad".to_string(),
            disturbance_scale: -1.0,
            threshold_scale: 1.0,
            duration: 1.0,
        };
        assert!(batch.run(std::slice::from_ref(&bad)).is_err());
        let endless = ScenarioSpec {
            label: "endless".to_string(),
            disturbance_scale: 1.0,
            threshold_scale: 1.0,
            duration: f64::INFINITY,
        };
        assert!(batch.run(std::slice::from_ref(&endless)).is_err());
        assert_eq!(batch.effective_threads(0), 1);
        assert!(batch.effective_threads(100) >= 1);
    }
}
