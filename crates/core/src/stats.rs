//! Streaming statistics for the robustness-campaign layer: online moments,
//! the P² quantile sketch, and exact (Clopper–Pearson) binomial confidence
//! intervals for statistical model checking.
//!
//! Everything here is O(1) memory per tracked quantity — the whole point of
//! the streaming campaign engine is that a million scenarios aggregate into
//! a handful of these accumulators, never into per-scenario vectors.

/// Online count/mean/min/max accumulator (Welford-style mean update, no
/// stored samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        OnlineStats { count: 0, mean: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Absorbs one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.mean += (value - self.mean) / self.count as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Streaming quantile estimator — the P² algorithm of Jain & Chlamtac
/// (CACM 1985): five markers track the target quantile `q` with O(1) memory
/// and no stored samples; marker heights move by parabolic (or, if that
/// would break ordering, linear) interpolation as observations arrive.
///
/// Exact below five observations (the first five are kept sorted), an
/// estimate with small rank error afterwards. **Order-dependent**: two
/// sketches fed the same observations in different orders may differ, which
/// is why the campaign aggregator consumes scenario metrics in strict
/// scenario-index order regardless of worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    /// Target quantile in (0, 1).
    q: f64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// Observations absorbed so far.
    count: u64,
}

impl P2Quantile {
    /// A sketch tracking the `q`-quantile, `q` clamped into (0, 1).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(1e-9, 1.0 - 1e-9);
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorbs one observation.
    pub fn push(&mut self, value: f64) {
        if self.count < 5 {
            // Bootstrap: keep the first five observations sorted in-place.
            let n = self.count as usize;
            self.heights[n] = value;
            self.count += 1;
            let filled = self.count as usize;
            self.heights[..filled].sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            return;
        }

        // Find the cell the observation falls into, stretching the extreme
        // markers if it lies outside the current range.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if value >= self.heights[i] && value < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for position in &mut self.positions[k + 1..] {
            *position += 1.0;
        }
        for (desired, increment) in self.desired.iter_mut().zip(&self.increments) {
            *desired += increment;
        }
        self.count += 1;

        // Adjust the three interior markers towards their desired positions.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (delta >= 1.0 && step_up) || (delta <= -1.0 && step_down) {
                let direction = if delta >= 1.0 { 1.0 } else { -1.0 };
                let candidate = self.parabolic(i, direction);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, direction)
                    };
                self.positions[i] += direction;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moved by
    /// `direction` (±1).
    fn parabolic(&self, i: usize, direction: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + direction / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + direction) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - direction) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabolic prediction breaks marker ordering.
    fn linear(&self, i: usize, direction: f64) -> f64 {
        let j = if direction > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + direction * (self.heights[j] - self.heights[i])
                / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate: `None` when empty, exact for fewer than
    /// five observations, the P² middle-marker height afterwards.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as usize;
        if n < 5 {
            // Exact on the sorted prefix (nearest-rank on n samples).
            let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
            return Some(self.heights[rank - 1]);
        }
        Some(self.heights[2])
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9 —
/// accurate to ~1e-13 over the positive reals, far tighter than the
/// confidence bounds need).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection for the (unused here) left half-plane, kept for safety.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` by the continued
/// fraction of Lentz's method (Numerical Recipes idiom), with the symmetry
/// transform for fast convergence.
fn beta_incomplete(x: f64, a: f64, b: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction directly where it converges fast, the
    // symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(x, a, b) / a
    } else {
        1.0 - front * beta_cf(1.0 - x, b, a) / b
    }
}

/// The continued fraction of the incomplete beta (modified Lentz).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let mut c = 1.0;
    let mut d = 1.0 - (a + b) * x / (a + 1.0);
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut result = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        // Even step.
        let numerator = m_f * (b - m_f) * x / ((a + 2.0 * m_f - 1.0) * (a + 2.0 * m_f));
        d = 1.0 + numerator * d;
        if d.abs() < TINY {
            d = TINY;
        }
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if c.abs() < TINY {
            c = TINY;
        }
        result *= d * c;
        // Odd step.
        let numerator =
            -(a + m_f) * (a + b + m_f) * x / ((a + 2.0 * m_f) * (a + 2.0 * m_f + 1.0));
        d = 1.0 + numerator * d;
        if d.abs() < TINY {
            d = TINY;
        }
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if c.abs() < TINY {
            c = TINY;
        }
        let delta = d * c;
        result *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    result
}

/// Inverse of `p ↦ I_p(a, b)` by bisection — 100 halvings pin the root to
/// ~8e-31, and the monotone incomplete beta makes bisection unconditionally
/// safe (no derivative pathologies near 0 or 1).
fn beta_inv(target: f64, a: f64, b: f64) -> f64 {
    let mut lo = 0.0;
    let mut hi = 1.0;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if beta_incomplete(mid, a, b) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Exact (Clopper–Pearson) two-sided confidence interval for a binomial
/// proportion: `successes` out of `trials` with confidence `1 − alpha`.
/// Returns `(lower, upper)`.
///
/// This is the interval statistical model checking quotes for
/// P(settle ≤ deadline): it *guarantees* coverage at the cost of being
/// conservative, which is the right trade for a safety claim. Degenerate
/// inputs are handled per the standard convention — zero successes pin the
/// lower bound at 0, all successes pin the upper bound at 1, zero trials
/// give (0, 1).
pub fn clopper_pearson(successes: u64, trials: u64, alpha: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let alpha = alpha.clamp(1e-12, 1.0 - 1e-12);
    let s = successes.min(trials) as f64;
    let n = trials as f64;
    let lower = if successes == 0 {
        0.0
    } else {
        beta_inv(alpha / 2.0, s, n - s + 1.0)
    };
    let upper = if successes >= trials {
        1.0
    } else {
        beta_inv(1.0 - alpha / 2.0, s + 1.0, n - s)
    };
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_track_count_mean_min_max() {
        let mut stats = OnlineStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert!(stats.min().is_none());
        assert!(stats.max().is_none());
        for value in [3.0, 1.0, 4.0, 1.0, 5.0] {
            stats.push(value);
        }
        assert_eq!(stats.count(), 5);
        assert!((stats.mean() - 2.8).abs() < 1e-12);
        assert_eq!(stats.min(), Some(1.0));
        assert_eq!(stats.max(), Some(5.0));
    }

    #[test]
    fn online_stats_single_observation_is_its_own_summary() {
        let mut stats = OnlineStats::new();
        stats.push(-2.5);
        assert_eq!(stats.count(), 1);
        assert_eq!(stats.mean(), -2.5);
        assert_eq!(stats.min(), Some(-2.5));
        assert_eq!(stats.max(), Some(-2.5));
    }

    #[test]
    fn online_stats_constant_stream_never_drifts() {
        // The Welford update divides by the running count; a constant stream
        // must reproduce the constant exactly, with min == max.
        let mut stats = OnlineStats::new();
        for _ in 0..1000 {
            stats.push(0.1);
        }
        assert_eq!(stats.mean(), 0.1);
        assert_eq!(stats.min(), stats.max());
    }

    #[test]
    fn p2_quantile_target_is_clamped_into_the_open_interval() {
        // q outside (0, 1) would zero or saturate the marker increments and
        // the estimator would silently track an extreme; new() clamps.
        for q in [-3.0, 0.0, 1.0, 7.0] {
            let sketch = P2Quantile::new(q);
            assert!(
                sketch.quantile() > 0.0 && sketch.quantile() < 1.0,
                "q = {q} must clamp into (0, 1), got {}",
                sketch.quantile()
            );
        }
    }

    #[test]
    fn p2_single_observation_is_every_quantile() {
        for q in [0.01, 0.5, 0.99] {
            let mut sketch = P2Quantile::new(q);
            assert_eq!(sketch.count(), 0);
            assert!(sketch.estimate().is_none());
            sketch.push(42.0);
            assert_eq!(sketch.count(), 1);
            assert_eq!(sketch.estimate(), Some(42.0));
        }
    }

    #[test]
    fn p2_constant_stream_stays_exact_past_the_bootstrap() {
        // All five markers coincide, so parabolic/linear adjustment must
        // never move the middle marker off the constant.
        let mut sketch = P2Quantile::new(0.9);
        for _ in 0..100 {
            sketch.push(7.0);
        }
        assert_eq!(sketch.estimate(), Some(7.0));
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut sketch = P2Quantile::new(0.5);
        assert!(sketch.estimate().is_none());
        sketch.push(10.0);
        assert_eq!(sketch.estimate(), Some(10.0));
        sketch.push(2.0);
        sketch.push(6.0);
        // Median of {2, 6, 10} by nearest rank: ceil(0.5*3)=2nd → 6.
        assert_eq!(sketch.estimate(), Some(6.0));
    }

    #[test]
    fn p2_median_converges_on_uniform_ramp() {
        let mut sketch = P2Quantile::new(0.5);
        // 0..1000 shuffled deterministically by a multiplicative stride.
        for k in 0u64..1001 {
            let value = ((k * 577) % 1001) as f64;
            sketch.push(value);
        }
        let estimate = sketch.estimate().unwrap();
        assert!(
            (estimate - 500.0).abs() < 25.0,
            "P² median of 0..=1000 must be near 500, got {estimate}"
        );
    }

    #[test]
    fn p2_p95_lands_in_the_upper_tail() {
        let mut sketch = P2Quantile::new(0.95);
        for k in 0u64..2000 {
            let value = ((k * 991) % 2000) as f64 / 2000.0;
            sketch.push(value);
        }
        let estimate = sketch.estimate().unwrap();
        assert!(
            (0.90..=1.0).contains(&estimate),
            "P95 of uniform [0,1) must land near 0.95, got {estimate}"
        );
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_special_cases() {
        // I_x(1, 1) = x (uniform CDF).
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((beta_incomplete(x, 1.0, 1.0) - x).abs() < 1e-12);
        }
        // I_x(1, b) = 1 − (1−x)^b.
        let x = 0.3;
        let b = 4.0;
        assert!((beta_incomplete(x, 1.0, b) - (1.0 - (1.0 - x).powf(b))).abs() < 1e-12);
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        let (a, b, x) = (3.0, 7.0, 0.42);
        assert!(
            (beta_incomplete(x, a, b) - (1.0 - beta_incomplete(1.0 - x, b, a))).abs() < 1e-12
        );
    }

    #[test]
    fn clopper_pearson_matches_published_values() {
        // Classical reference: 5 successes in 10 trials at 95 % confidence
        // gives (0.187, 0.813) to three decimals.
        let (lo, hi) = clopper_pearson(5, 10, 0.05);
        assert!((lo - 0.187).abs() < 0.001, "lower: {lo}");
        assert!((hi - 0.813).abs() < 0.001, "upper: {hi}");
        // 0/10 at 95 %: the "rule of three"-adjacent exact bound 1−(α/2)^(1/n).
        let (lo, hi) = clopper_pearson(0, 10, 0.05);
        assert_eq!(lo, 0.0);
        assert!((hi - (1.0 - (0.025f64).powf(0.1))).abs() < 1e-9, "upper: {hi}");
        // All successes mirror it.
        let (lo, hi) = clopper_pearson(10, 10, 0.05);
        assert_eq!(hi, 1.0);
        assert!((lo - (0.025f64).powf(0.1)).abs() < 1e-9, "lower: {lo}");
    }

    #[test]
    fn clopper_pearson_contains_the_point_estimate_and_tightens() {
        for (s, n) in [(1u64, 8u64), (13, 40), (99, 100)] {
            let (lo, hi) = clopper_pearson(s, n, 0.05);
            let p = s as f64 / n as f64;
            assert!(lo <= p && p <= hi, "({lo}, {hi}) must contain {p}");
            assert!(lo >= 0.0 && hi <= 1.0);
        }
        // More trials at the same rate tighten the interval.
        let (lo_small, hi_small) = clopper_pearson(5, 10, 0.05);
        let (lo_big, hi_big) = clopper_pearson(500, 1000, 0.05);
        assert!(hi_big - lo_big < hi_small - lo_small);
        // Lower confidence tightens it too.
        let (lo_90, hi_90) = clopper_pearson(5, 10, 0.10);
        assert!(hi_90 - lo_90 < hi_small - lo_small);
        // Degenerate input.
        assert_eq!(clopper_pearson(3, 0, 0.05), (0.0, 1.0));
    }

    #[test]
    fn clopper_pearson_degenerate_inputs_stay_finite_and_ordered() {
        // One trial, both outcomes: the interval must still be a proper
        // sub-interval of [0, 1] with the pinned bound exact.
        let (lo, hi) = clopper_pearson(0, 1, 0.05);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi <= 1.0 && hi.is_finite());
        let (lo, hi) = clopper_pearson(1, 1, 0.05);
        assert_eq!(hi, 1.0);
        assert!((0.0..1.0).contains(&lo) && lo.is_finite());

        // successes > trials is clamped, not UB: behaves like s = n.
        assert_eq!(clopper_pearson(7, 3, 0.05), clopper_pearson(3, 3, 0.05));

        // alpha is clamped away from {0, 1}; the bounds must never be NaN
        // and must stay ordered even at the extremes.
        for alpha in [0.0, 1e-300, 0.5, 1.0, 2.0] {
            for (s, n) in [(0u64, 5u64), (2, 5), (5, 5), (0, 0)] {
                let (lo, hi) = clopper_pearson(s, n, alpha);
                assert!(!lo.is_nan() && !hi.is_nan(), "NaN at s={s} n={n} alpha={alpha}");
                assert!(
                    (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
                    "bounds ({lo}, {hi}) out of order at s={s} n={n} alpha={alpha}"
                );
            }
        }
    }
}
