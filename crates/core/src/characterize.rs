//! Dwell/wait characterisation of an application and extraction of its
//! Table-I timing parameters (the pipeline behind Figures 3 and 4).

use crate::application::ControlApplication;
use crate::error::{CoreError, Result};
use cps_control::{
    characterize_dwell_vs_wait_with, CharacterizationConfig, CharacterizationWorkspace,
    DwellWaitCurve,
};
use cps_sched::{AppTimingParams, DwellTimeModel, NonMonotonicModel};

/// Default simulation horizon *cap* (in samples) for every settling
/// computation: 3000 samples at the 20 ms case-study period cover a 60 s
/// transient, an order of magnitude beyond the slowest ET response in the
/// repository. Since the characterisation pipeline runs on the early-exit
/// kernel machinery, this is only the upper bound at which a loop is
/// declared non-settling — settled runs stop as soon as settling is
/// provable, typically one to two orders of magnitude earlier.
const DEFAULT_HORIZON: usize = 3_000;

/// Characterises the dwell-time / wait-time relation of an application by
/// simulating its switched closed loop (saturated if the application has an
/// actuator limit, linear otherwise) — the reproduction of Figure 3.
///
/// # Errors
///
/// Propagates simulation and configuration failures.
pub fn characterize_application(app: &ControlApplication) -> Result<DwellWaitCurve> {
    characterize_application_with(app, &mut CharacterizationWorkspace::new())
}

/// [`characterize_application`] on a caller-provided
/// [`CharacterizationWorkspace`]: the shape the fleet designer threads
/// through its workers, so the switched-kernel / saturated-sim scratch is
/// pooled per worker instead of rebuilt per application. The curve is
/// bit-identical to the one-shot path for any workspace state.
///
/// # Errors
///
/// As [`characterize_application`].
pub fn characterize_application_with(
    app: &ControlApplication,
    workspace: &mut CharacterizationWorkspace,
) -> Result<DwellWaitCurve> {
    let spec = app.spec();
    if let Some(model) = app.saturated_model()? {
        let config = CharacterizationConfig {
            period: spec.period,
            threshold: spec.threshold,
            initial_state: spec.disturbance.clone(),
            plant_order: spec.plant.order(),
            horizon: DEFAULT_HORIZON,
        };
        return Ok(model.characterize_with(&config, workspace)?);
    }
    // Linear path: simulate the delay-augmented closed loops directly.
    let mut initial = spec.disturbance.clone();
    initial.extend(std::iter::repeat(0.0).take(spec.plant.inputs()));
    let config = CharacterizationConfig {
        period: spec.period,
        threshold: spec.threshold,
        initial_state: initial,
        plant_order: spec.plant.order(),
        horizon: DEFAULT_HORIZON,
    };
    Ok(characterize_dwell_vs_wait_with(
        app.et_controller().closed_loop(),
        app.tt_controller().closed_loop(),
        &config,
        workspace,
    )?)
}

/// Fits the paper's two-segment non-monotonic model (Figure 4) to a measured
/// dwell/wait curve such that the model upper-bounds every measured point —
/// the safety requirement stated in Section III ("the corresponding modeled
/// dwell time … must be longer than or equal to the actual dwell time").
///
/// Returns `(xi_tt, xi_et, xi_m, k_p)`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the curve is degenerate (empty or
/// with non-positive pure-mode response times).
pub fn fit_non_monotonic(curve: &DwellWaitCurve) -> Result<(f64, f64, f64, f64)> {
    if curve.points.is_empty() || !(curve.xi_tt > 0.0) || !(curve.xi_et > 0.0) {
        return Err(CoreError::InvalidConfig {
            reason: "cannot fit a dwell model to a degenerate characterisation curve".to_string(),
        });
    }
    let xi_tt = curve.xi_tt;
    let max_dwell = curve.max_dwell().max(xi_tt);
    let period = curve.period;

    // Candidate peak positions: every sampled wait time. For each candidate
    // the smallest peak value ξᴹ and curve end ξᴱᵀ that make the two-segment
    // model dominate every measured point are computed in closed form; the
    // candidate whose model is tightest overall (smallest summed dwell over
    // the measured wait grid) wins. This keeps both the non-monotonic model
    // and its conservative monotonic envelope snug.
    let mut best: Option<(f64, f64, f64)> = None; // (xi_m, xi_et, k_p)
    let mut best_score = f64::INFINITY;
    for candidate in curve.points.iter().map(|p| p.wait_time).filter(|w| *w > 0.0) {
        // Rising segment: xi_tt + (xi_m − xi_tt)·w/k_p ≥ d(w) for w ≤ k_p.
        let mut xi_m_required = max_dwell;
        for point in curve.points.iter().filter(|p| p.wait_time > 0.0 && p.wait_time <= candidate)
        {
            if point.dwell_time > xi_tt {
                xi_m_required = xi_m_required
                    .max(xi_tt + (point.dwell_time - xi_tt) * candidate / point.wait_time);
            }
        }
        // Falling segment: xi_m·(xi_et − w)/(xi_et − k_p) ≥ d(w) for w > k_p,
        // solved for the smallest admissible xi_et. The measurement can show
        // a small residual dwell beyond the measured ξᴱᵀ (the TT controller
        // taking over a barely-settled state briefly re-crosses the
        // threshold), so ξᴱᵀ may be stretched — a purely conservative
        // adjustment.
        let mut xi_et_required = curve.xi_et.max(candidate + period);
        let mut feasible = true;
        for point in curve.points.iter().filter(|p| p.wait_time > candidate && p.dwell_time > 0.0)
        {
            if point.dwell_time + 1e-12 >= xi_m_required {
                feasible = false;
                break;
            }
            let required = (point.wait_time * xi_m_required - candidate * point.dwell_time)
                / (xi_m_required - point.dwell_time);
            xi_et_required = xi_et_required.max(required);
        }
        if !feasible {
            continue;
        }
        let Ok(model) = NonMonotonicModel::new(xi_tt, xi_m_required, candidate, xi_et_required)
        else {
            continue;
        };
        // Tightness score: the total modelled dwell over the measured grid
        // plus the conservative-envelope intercept, so that neither the
        // non-monotonic model nor its monotonic envelope blow up.
        let envelope_intercept = model.conservative_envelope().max_dwell();
        let score: f64 = curve.points.iter().map(|p| model.dwell(p.wait_time)).sum::<f64>()
            + envelope_intercept;
        if score < best_score {
            best_score = score;
            best = Some((xi_m_required, xi_et_required, candidate));
        }
    }

    let (xi_m, xi_et, k_p) = best.ok_or_else(|| CoreError::InvalidConfig {
        reason: "no feasible two-segment dwell model for the measured curve".to_string(),
    })?;
    // Sanity check: the fitted model must dominate the measurement.
    let model = NonMonotonicModel::new(xi_tt, xi_m, k_p, xi_et).map_err(CoreError::Sched)?;
    debug_assert!(curve
        .points
        .iter()
        .all(|p| model.dwell(p.wait_time) + 1e-6 >= p.dwell_time));
    Ok((xi_tt, xi_et, xi_m, k_p))
}

/// Characterises an application and assembles its Table-I row.
///
/// # Errors
///
/// Propagates characterisation and fitting failures.
pub fn derive_timing_params(app: &ControlApplication) -> Result<AppTimingParams> {
    derive_timing_params_with(app, &mut CharacterizationWorkspace::new())
}

/// [`derive_timing_params`] on a caller-provided
/// [`CharacterizationWorkspace`] (see [`characterize_application_with`]).
///
/// # Errors
///
/// As [`derive_timing_params`].
pub fn derive_timing_params_with(
    app: &ControlApplication,
    workspace: &mut CharacterizationWorkspace,
) -> Result<AppTimingParams> {
    let curve = characterize_application_with(app, workspace)?;
    let (xi_tt, xi_et, xi_m, k_p) = fit_non_monotonic(&curve)?;
    let spec = app.spec();
    Ok(AppTimingParams::new(
        spec.name.clone(),
        spec.inter_arrival,
        spec.deadline,
        xi_tt,
        xi_et,
        xi_m,
        k_p,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::{ApplicationSpec, ControlApplication, ControllerSpec};
    use cps_control::plants;
    use cps_sched::DwellTimeModel;

    fn rig_app() -> ControlApplication {
        ControlApplication::design(ApplicationSpec {
            name: "servo".to_string(),
            plant: plants::servo_rig_upright(),
            period: 0.02,
            et_delay: 0.02,
            tt_delay: 0.0007,
            threshold: 0.1,
            disturbance: vec![45.0_f64.to_radians(), 0.0],
            deadline: 4.0,
            inter_arrival: 10.0,
            controllers: ControllerSpec::PolePlacement {
                et_poles: vec![-0.7, -0.8, -40.0],
                tt_poles: vec![-6.0, -8.0, -40.0],
            },
            input_limit: Some(plants::SERVO_RIG_TORQUE_LIMIT),
        })
        .unwrap()
    }

    #[test]
    fn rig_characterisation_matches_figure3_shape() {
        let curve = characterize_application(&rig_app()).unwrap();
        assert!(curve.is_non_monotonic());
        assert!(curve.max_dwell() > curve.xi_tt);
        assert!(curve.xi_et > 2.0 * curve.xi_tt);
    }

    #[test]
    fn fitted_model_dominates_measurement() {
        let curve = characterize_application(&rig_app()).unwrap();
        let (xi_tt, xi_et, xi_m, k_p) = fit_non_monotonic(&curve).unwrap();
        let model = NonMonotonicModel::new(xi_tt, xi_m, k_p, xi_et).unwrap();
        for point in &curve.points {
            assert!(
                model.dwell(point.wait_time) + 1e-6 >= point.dwell_time,
                "model must dominate the measurement at wait {}",
                point.wait_time
            );
        }
        assert!(k_p > 0.0);
        assert!(xi_m >= curve.max_dwell());
    }

    #[test]
    fn derived_timing_params_are_consistent() {
        let params = derive_timing_params(&rig_app()).unwrap();
        assert_eq!(params.name, "servo");
        assert!(params.xi_tt <= params.xi_m);
        assert!(params.xi_tt <= params.xi_et);
        assert!(params.k_p < params.xi_et);
        assert!(params.xi_prime_m >= params.xi_m);
    }

    #[test]
    fn fit_rejects_degenerate_curve() {
        let curve = DwellWaitCurve { points: vec![], xi_tt: 0.0, xi_et: 0.0, period: 0.02 };
        assert!(fit_non_monotonic(&curve).is_err());
    }
}
