//! Lane-batched co-simulation: K scenarios of one fleet stepped together.
//!
//! [`BatchCoSim`] is the lane-batched twin of [`CoSimulation`]
//! (`crate::cosim`): it owns one [`BatchStepKernel`] per application — each
//! K lanes wide, so the fleet's kernel states pack into `order×K` matrices —
//! plus one *lane context* per scenario slot: a private FlexRay bus, a
//! cloned allocation runtime, a degradation RNG stream and the loss/metric
//! counters. Every period each active lane replays exactly the sequence
//! `CoSimulation::advance_period` performs (storm injection, norm capture,
//! runtime mode decision on possibly noise-corrupted norms, bus mirroring,
//! bus advance, loss detection); only then do all kernels advance their
//! lanes in one batched sweep ([`BatchStepKernel::step_lanes`]), with
//! diverging lanes — hold-last-command, a mode differing from its
//! neighbours, a finished scenario — peeling off to the strided scalar path
//! for that step and rejoining after.
//!
//! # Bit-identity contract
//!
//! For every lane the produced trajectory, loss counters and online metrics
//! are bit-for-bit those of a scalar [`CoSimulation`] running the same
//! scenario: the batched kernels are bit-identical to the scalar kernels by
//! construction (see `cps_linalg::matvec_lanes_kernel`), every lane owns
//! private bus/runtime/RNG state, and the per-period call order matches
//! `advance_period` exactly. `tests/batched_equivalence.rs` and the module
//! tests below enforce the contract; the campaign and scenario engines rely
//! on it to keep their outputs independent of the configured lane width.

use crate::campaign::CampaignScenario;
use crate::cosim::{register_fleet_frames, DegradationConfig, RunMetrics};
use crate::error::{CoreError, Result};
use crate::fleet::DesignedFleet;
use crate::runtime::AllocationRuntime;
use crate::scenario::ScenarioSpec;
use cps_control::{BatchStepKernel, CommunicationMode, LaneStep};
use cps_flexray::{FlexRayBus, Segment, SimRng};
use std::sync::Arc;

/// Per-lane mutable context: everything a scalar engine owns besides the
/// kernel state (which lives packed inside the shared [`BatchStepKernel`]s).
#[derive(Debug)]
struct LaneState {
    /// `true` while the lane carries a scenario of the current group.
    loaded: bool,
    /// First error this lane hit mid-run; freezes the lane.
    error: Option<CoreError>,
    runtime: AllocationRuntime,
    bus: FlexRayBus,
    threshold_scale: f64,
    degradation: Option<DegradationConfig>,
    degradation_rng: SimRng,
    /// Periods this lane's scenario simulates.
    steps_total: usize,
    /// Scratch: pre-step plant-state norms of the current period.
    norms: Vec<f64>,
    /// Scratch: noise-corrupted norms handed to the runtime.
    noisy_norms: Vec<f64>,
    /// Scratch: communication modes granted for the current period.
    modes: Vec<CommunicationMode>,
    prev_losses: Vec<u64>,
    consecutive_losses: Vec<u64>,
    max_consecutive_losses: Vec<u64>,
    held_periods: Vec<u64>,
    /// Online settling candidates (same semantics as `RunMetrics`).
    candidates: Vec<usize>,
    peak_norms: Vec<f64>,
    tt_periods: Vec<u64>,
}

/// The lane-batched co-simulation engine. Construct once per worker, then
/// per group of up to `lanes` compatible scenarios: [`BatchCoSim::clear`],
/// load each lane, [`BatchCoSim::run_loaded`], and read each lane back with
/// [`BatchCoSim::lane_metrics_into`]. Warm reuse allocates nothing.
#[derive(Debug)]
pub(crate) struct BatchCoSim {
    fleet: Arc<DesignedFleet>,
    lanes: usize,
    /// One batched kernel per application, each `lanes` wide.
    kernels: Vec<BatchStepKernel>,
    lane_states: Vec<LaneState>,
    /// Per-application lane operations of the current period: `ops[app][lane]`.
    ops: Vec<Vec<LaneStep>>,
    /// Scratch for staging slot allocations.
    slot_scratch: Vec<Option<usize>>,
    period: f64,
}

impl BatchCoSim {
    /// Builds a batch engine with `lanes` scenario slots over a shared fleet
    /// design (`lanes` is clamped to at least 1).
    pub(crate) fn from_fleet(fleet: &Arc<DesignedFleet>, lanes: usize) -> Result<Self> {
        let lanes = lanes.max(1);
        let app_count = fleet.app_count();
        let mut kernels = Vec::with_capacity(app_count);
        for app in fleet.apps() {
            kernels.push(app.kernel_matrices().batch_kernel(lanes));
        }
        let template_runtime =
            AllocationRuntime::new(fleet.runtime_apps().to_vec(), fleet.slot_count())?;
        let mut lane_states = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let mut bus = FlexRayBus::new(fleet.bus_config())?;
            register_fleet_frames(&mut bus, fleet.apps())?;
            // Lanes collect statistics only, never transmission logs — the
            // scalar engines suspend logging the same way on the metrics
            // path this engine mirrors.
            bus.set_logging(false);
            lane_states.push(LaneState {
                loaded: false,
                error: None,
                runtime: template_runtime.clone(),
                bus,
                threshold_scale: 1.0,
                degradation: None,
                degradation_rng: SimRng::seeded(0),
                steps_total: 0,
                norms: vec![0.0; app_count],
                noisy_norms: Vec::with_capacity(app_count),
                modes: Vec::with_capacity(app_count),
                prev_losses: vec![0; app_count],
                consecutive_losses: vec![0; app_count],
                max_consecutive_losses: vec![0; app_count],
                held_periods: vec![0; app_count],
                candidates: vec![0; app_count],
                peak_norms: vec![0.0; app_count],
                tt_periods: vec![0; app_count],
            });
        }
        let period = fleet.period();
        Ok(BatchCoSim {
            fleet: Arc::clone(fleet),
            lanes,
            kernels,
            lane_states,
            ops: vec![vec![LaneStep::Skip; lanes]; app_count],
            slot_scratch: vec![None; app_count],
            period,
        })
    }

    /// Number of scenario slots.
    pub(crate) fn lanes(&self) -> usize {
        self.lanes
    }

    /// Unloads every lane, starting a new group. Lane state is actually
    /// rewound lazily by the load calls; unloaded lanes are skipped.
    pub(crate) fn clear(&mut self) {
        for state in &mut self.lane_states {
            state.loaded = false;
            state.error = None;
        }
    }

    /// Rewinds one lane to time zero — the lane-local mirror of
    /// `CoSimulation::reset`: kernel column to the origin, runtime slots
    /// released, bus counters cleared and every frame back in the dynamic
    /// segment, degradation stream reseeded, loss/hold/metric counters
    /// zeroed.
    fn reset_lane(&mut self, lane: usize) -> Result<()> {
        for kernel in &mut self.kernels {
            kernel.reset_lane(lane);
        }
        let state = &mut self.lane_states[lane];
        state.runtime.reset();
        state.bus.reset();
        for index in 0..self.fleet.app_count() {
            state.bus.reassign_frame(index as u32 + 1, Segment::Dynamic)?;
        }
        state.degradation_rng =
            SimRng::seeded(state.degradation.map(|d| d.seed).unwrap_or(0));
        state.prev_losses.fill(0);
        state.consecutive_losses.fill(0);
        state.max_consecutive_losses.fill(0);
        state.held_periods.fill(0);
        state.candidates.fill(0);
        state.peak_norms.fill(0.0);
        state.tt_periods.fill(0);
        state.steps_total = 0;
        state.error = None;
        state.loaded = false;
        Ok(())
    }

    /// The lane-local mirror of `CoSimulation::set_threshold_scale`.
    fn set_lane_threshold_scale(&mut self, lane: usize, scale: f64) -> Result<()> {
        if !(scale > 0.0) || !scale.is_finite() {
            return Err(CoreError::InvalidConfig {
                reason: format!("threshold scale must be positive and finite, got {scale}"),
            });
        }
        let state = &mut self.lane_states[lane];
        for (index, app) in self.fleet.apps().iter().enumerate() {
            state.runtime.set_threshold(index, app.spec().threshold * scale)?;
        }
        state.threshold_scale = scale;
        Ok(())
    }

    /// Loads a campaign scenario into `lane`, mirroring the scalar
    /// `run_scenario` call order exactly: reset, threshold scale, fault
    /// model, degradation, scaled designed disturbances. The caller
    /// validates the scenario fields (family, scale, duration) first.
    pub(crate) fn load_campaign_lane(
        &mut self,
        lane: usize,
        scenario: &CampaignScenario,
    ) -> Result<()> {
        self.reset_lane(lane)?;
        self.set_lane_threshold_scale(lane, scenario.threshold_scale)?;
        let state = &mut self.lane_states[lane];
        state.bus.set_fault_model(scenario.fault)?;
        if let Some(config) = &scenario.degradation {
            config.validate()?;
        }
        state.degradation = scenario.degradation;
        state.degradation_rng =
            SimRng::seeded(state.degradation.map(|d| d.seed).unwrap_or(0));
        for (kernel, app) in self.kernels.iter_mut().zip(self.fleet.apps()) {
            kernel.inject_lane_disturbance_scaled(
                lane,
                &app.spec().disturbance,
                scenario.disturbance_scale,
            )?;
        }
        let state = &mut self.lane_states[lane];
        state.steps_total = (scenario.duration / self.period).ceil() as usize;
        state.loaded = true;
        Ok(())
    }

    /// Loads a sweep scenario into `lane`, mirroring `run_one`'s call order
    /// for a spec without bus/allocation overrides: reset, (re)apply the
    /// fleet's slot map, threshold scale, disturbances. The caller validates
    /// scale/duration and guarantees the spec carries no bus-config or
    /// slot-map override (those scenarios take the scalar path).
    pub(crate) fn load_scenario_lane(&mut self, lane: usize, spec: &ScenarioSpec) -> Result<()> {
        debug_assert!(spec.bus_config.is_none() && spec.allocation.is_none());
        self.reset_lane(lane)?;
        // Scenario sweeps never install fault/degradation layers; clear any
        // state a previous (campaign) load left behind.
        let allocation = self.fleet.allocation();
        let slot_count = allocation.slot_count();
        for (index, slot) in self.slot_scratch.iter_mut().enumerate() {
            *slot = allocation.slot_of(index);
        }
        let state = &mut self.lane_states[lane];
        state.bus.set_fault_model(None)?;
        state.degradation = None;
        state.degradation_rng = SimRng::seeded(0);
        state.runtime.set_allocation(&self.slot_scratch, slot_count)?;
        self.set_lane_threshold_scale(lane, spec.threshold_scale)?;
        match &spec.disturbances {
            None => {
                for (kernel, app) in self.kernels.iter_mut().zip(self.fleet.apps()) {
                    kernel.inject_lane_disturbance_scaled(
                        lane,
                        &app.spec().disturbance,
                        spec.disturbance_scale,
                    )?;
                }
            }
            Some(vectors) => {
                if vectors.len() != self.kernels.len() {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "expected {} disturbance vectors, got {}",
                            self.kernels.len(),
                            vectors.len()
                        ),
                    });
                }
                for (kernel, disturbance) in self.kernels.iter_mut().zip(vectors) {
                    kernel.inject_lane_disturbance_scaled(
                        lane,
                        disturbance,
                        spec.disturbance_scale,
                    )?;
                }
            }
        }
        let state = &mut self.lane_states[lane];
        state.steps_total = (spec.duration / self.period).ceil() as usize;
        state.loaded = true;
        Ok(())
    }

    /// Runs every loaded lane to the end of its scenario. Lanes finishing
    /// early (shorter durations) skip the remaining periods; a lane hitting
    /// an engine error freezes while the others finish, and the error of the
    /// lowest-index failed lane — the first in scenario order — is returned.
    pub(crate) fn run_loaded(&mut self) -> Result<()> {
        let max_steps = self
            .lane_states
            .iter()
            .filter(|state| state.loaded)
            .map(|state| state.steps_total)
            .max()
            .unwrap_or(0);
        for step in 0..max_steps {
            self.advance_step(step);
        }
        for state in &mut self.lane_states {
            if let Some(error) = state.error.take() {
                return Err(error);
            }
        }
        Ok(())
    }

    /// Advances every active lane by one period, then steps all kernels'
    /// lanes in one batched sweep.
    fn advance_step(&mut self, step: usize) {
        for lane in 0..self.lanes {
            let state = &self.lane_states[lane];
            let active = state.loaded && state.error.is_none() && step < state.steps_total;
            if !active {
                for ops in &mut self.ops {
                    ops[lane] = LaneStep::Skip;
                }
                continue;
            }
            if let Err(error) = process_lane(
                &self.fleet,
                &mut self.kernels,
                &mut self.lane_states[lane],
                &mut self.ops,
                lane,
                step,
                self.period,
            ) {
                self.lane_states[lane].error = Some(error);
                for ops in &mut self.ops {
                    ops[lane] = LaneStep::Skip;
                }
            }
        }
        for (kernel, ops) in self.kernels.iter_mut().zip(&self.ops) {
            kernel.step_lanes(ops);
        }
    }

    /// Writes lane `lane`'s online summary into `metrics` — the lane-local
    /// mirror of `run_metrics_into`'s finalisation, bit-identical to the
    /// scalar engine's fill for the same scenario.
    pub(crate) fn lane_metrics_into(&self, lane: usize, metrics: &mut RunMetrics) {
        let state = &self.lane_states[lane];
        let app_count = self.fleet.app_count();
        metrics.begin(app_count, self.period);
        metrics.steps = state.steps_total;
        for (index, app) in self.fleet.apps().iter().enumerate() {
            // Same semantics as `settling_index`: the candidate is one past
            // the last threshold violation; a violation in the final period
            // means the run never settled.
            let response = (state.candidates[index] < state.steps_total)
                .then(|| state.candidates[index] as f64 * self.period);
            metrics.response_times[index] = response;
            metrics.deadlines_met[index] =
                response.map(|t| t <= app.spec().deadline).unwrap_or(false);
            metrics.candidates[index] = state.candidates[index];
            metrics.peak_norms[index] = state.peak_norms[index];
            metrics.tt_periods[index] = state.tt_periods[index];
            metrics.held_periods[index] = state.held_periods[index];
            metrics.max_consecutive_losses[index] = state.max_consecutive_losses[index];
        }
        metrics.bus = state.bus.statistics();
    }
}

/// One lane's share of one period — the exact `advance_period` sequence up
/// to (but not including) the kernel step, which is deferred to the batched
/// sweep: the lane's operation for each application lands in
/// `ops[app][lane]`.
fn process_lane(
    fleet: &Arc<DesignedFleet>,
    kernels: &mut [BatchStepKernel],
    state: &mut LaneState,
    ops: &mut [Vec<LaneStep>],
    lane: usize,
    step: usize,
    period: f64,
) -> Result<()> {
    let time = step as f64 * period;
    if let Some(storm) = state.degradation.and_then(|d| d.storm) {
        let interval_steps = ((storm.interval / period).round() as usize).max(1);
        if step > 0 && step % interval_steps == 0 {
            for (kernel, app) in kernels.iter_mut().zip(fleet.apps()) {
                kernel.inject_lane_disturbance_scaled(
                    lane,
                    &app.spec().disturbance,
                    storm.scale,
                )?;
            }
        }
    }
    for (norm, kernel) in state.norms.iter_mut().zip(kernels.iter()) {
        *norm = kernel.lane_state_norm(lane);
    }
    // The runtime decides on what the sensors report — the true norms, or
    // under degradation norms corrupted by uniform measurement noise (one
    // draw per application per period whatever the amplitude). The true
    // norms still drive the plants and the recorded metrics.
    let LaneState { runtime, norms, noisy_norms, modes, degradation, degradation_rng, .. } = state;
    if let Some(config) = degradation {
        noisy_norms.clear();
        for norm in norms.iter() {
            let corrupted = norm + config.sensor_noise * degradation_rng.next_signed_unit();
            noisy_norms.push(corrupted.max(0.0));
        }
        runtime.step_into(noisy_norms, modes)?;
    } else {
        runtime.step_into(norms, modes)?;
    }

    for (index, mode) in state.modes.iter().enumerate() {
        let frame_id = index as u32 + 1;
        let segment = match mode {
            CommunicationMode::TimeTriggered => Segment::Static {
                slot: state
                    .runtime
                    .slot_holders()
                    .iter()
                    .position(|holder| *holder == Some(index))
                    .unwrap_or(0),
            },
            CommunicationMode::EventTriggered => Segment::Dynamic,
        };
        // Reassignment can fail only transiently when two apps swap a slot
        // within one period; fall back to the dynamic segment.
        if state.bus.reassign_frame(frame_id, segment).is_err() {
            state.bus.reassign_frame(frame_id, Segment::Dynamic)?;
        }
        state.bus.queue_message(frame_id, time)?;
    }
    state.bus.advance_until(time + period);

    // Decide each application's lane operation now that the bus has decided
    // each frame's fate, and fold this period into the online metrics (the
    // pre-step norms, exactly as `run_metrics_loop` does after
    // `advance_period`).
    for (index, mode) in state.modes.iter().enumerate() {
        let losses = state.bus.losses_of(index as u32 + 1);
        let op = if losses > state.prev_losses[index] {
            state.prev_losses[index] = losses;
            state.held_periods[index] += 1;
            state.consecutive_losses[index] += 1;
            if state.consecutive_losses[index] > state.max_consecutive_losses[index] {
                state.max_consecutive_losses[index] = state.consecutive_losses[index];
            }
            LaneStep::Hold
        } else {
            state.consecutive_losses[index] = 0;
            LaneStep::from_mode(*mode)
        };
        ops[index][lane] = op;

        let norm = state.norms[index];
        let threshold = fleet.apps()[index].spec().threshold * state.threshold_scale;
        if norm > threshold {
            state.candidates[index] = step + 1;
        }
        if norm > state.peak_norms[index] {
            state.peak_norms[index] = norm;
        }
        if *mode == CommunicationMode::TimeTriggered {
            state.tt_periods[index] += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;
    use crate::cosim::{CoSimulation, ModeSwitchStorm};
    use cps_flexray::{FaultModel, FlexRayConfig, GilbertElliott};

    fn fleet() -> Arc<DesignedFleet> {
        let apps = case_study::derived_fleet().unwrap();
        let table = case_study::derive_table(&apps).unwrap();
        let allocation =
            cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default()).unwrap();
        Arc::new(
            DesignedFleet::new(apps, allocation, FlexRayConfig::paper_case_study()).unwrap(),
        )
    }

    fn scenarios() -> Vec<CampaignScenario> {
        // Mixed severities: a nominal lane, a faulty lane with storms (lane
        // divergence through hold-last-command and mode switches), a bursty
        // lane, and a ragged short lane.
        vec![
            CampaignScenario {
                family: 0,
                disturbance_scale: 1.0,
                threshold_scale: 1.0,
                duration: 2.0,
                fault: None,
                degradation: None,
            },
            CampaignScenario {
                family: 0,
                disturbance_scale: 1.4,
                threshold_scale: 0.9,
                duration: 2.0,
                fault: Some(FaultModel::drops(7, 0.3).with_corruption(0.01)),
                degradation: Some(DegradationConfig {
                    seed: 11,
                    sensor_noise: 0.02,
                    storm: Some(ModeSwitchStorm { interval: 0.4, scale: 0.8 }),
                }),
            },
            CampaignScenario {
                family: 0,
                disturbance_scale: 0.7,
                threshold_scale: 1.1,
                duration: 1.5,
                fault: Some(FaultModel::drops(3, 0.1).with_burst(GilbertElliott {
                    degrade_probability: 0.2,
                    recover_probability: 0.3,
                    bad_drop_probability: 0.9,
                })),
                degradation: None,
            },
            CampaignScenario {
                family: 0,
                disturbance_scale: 1.1,
                threshold_scale: 1.0,
                duration: 0.7,
                fault: Some(FaultModel::drops(5, 0.5)),
                degradation: Some(DegradationConfig::noise(23, 0.05)),
            },
        ]
    }

    fn scalar_metrics(fleet: &Arc<DesignedFleet>, scenario: &CampaignScenario) -> RunMetrics {
        let mut engine = CoSimulation::from_fleet(Arc::clone(fleet)).unwrap();
        let mut metrics = RunMetrics::default();
        engine.reset().unwrap();
        engine.set_threshold_scale(scenario.threshold_scale).unwrap();
        engine.set_fault_model(scenario.fault).unwrap();
        engine.set_degradation(scenario.degradation).unwrap();
        engine.inject_disturbances_scaled(scenario.disturbance_scale).unwrap();
        engine.run_metrics_into(scenario.duration, &mut metrics).unwrap();
        metrics
    }

    #[test]
    fn batched_campaign_lanes_match_scalar_engines_bit_for_bit() {
        let fleet = fleet();
        let scenarios = scenarios();
        for lanes in [1, 2, 3, 4] {
            let mut batch = BatchCoSim::from_fleet(&fleet, lanes).unwrap();
            let mut metrics = RunMetrics::default();
            for group in scenarios.chunks(lanes) {
                batch.clear();
                for (lane, scenario) in group.iter().enumerate() {
                    batch.load_campaign_lane(lane, scenario).unwrap();
                }
                batch.run_loaded().unwrap();
                for (lane, scenario) in group.iter().enumerate() {
                    batch.lane_metrics_into(lane, &mut metrics);
                    let expected = scalar_metrics(&fleet, scenario);
                    assert_eq!(
                        metrics, expected,
                        "lane {lane} of {lanes} diverged from the scalar engine"
                    );
                }
            }
        }
    }

    #[test]
    fn faulty_lanes_actually_diverge() {
        // The equivalence above is only meaningful if the scenario mix
        // exercises the peel-off paths: losses must occur.
        let fleet = fleet();
        let mut batch = BatchCoSim::from_fleet(&fleet, 4).unwrap();
        batch.clear();
        for (lane, scenario) in scenarios().iter().enumerate() {
            batch.load_campaign_lane(lane, scenario).unwrap();
        }
        batch.run_loaded().unwrap();
        let mut metrics = RunMetrics::default();
        batch.lane_metrics_into(1, &mut metrics);
        assert!(metrics.bus.lost_frames() > 0, "faulty lane must lose frames");
        assert!(metrics.held_periods.iter().any(|&h| h > 0));
        batch.lane_metrics_into(0, &mut metrics);
        assert_eq!(metrics.bus.lost_frames(), 0, "nominal lane must stay clean");
    }

    #[test]
    fn warm_reuse_is_bit_identical_to_fresh() {
        let fleet = fleet();
        let scenario = &scenarios()[1];
        let mut batch = BatchCoSim::from_fleet(&fleet, 2).unwrap();
        let mut first = RunMetrics::default();
        batch.clear();
        batch.load_campaign_lane(0, scenario).unwrap();
        batch.run_loaded().unwrap();
        batch.lane_metrics_into(0, &mut first);
        // Re-run the same scenario on the other (stale) lane of the warm
        // engine; the fresh-run metrics must reproduce bit for bit.
        let mut second = RunMetrics::default();
        batch.clear();
        batch.load_campaign_lane(1, scenario).unwrap();
        batch.run_loaded().unwrap();
        batch.lane_metrics_into(1, &mut second);
        assert_eq!(first, second);
    }
}
