//! The fail-operational design service, end to end: start a
//! [`DesignServer`] on a Unix-domain socket *and* a TCP listener, drive it
//! with a retrying [`DesignClient`] through the three job kinds (exact
//! fleet design, bus-geometry sweep, robustness campaign), stream a
//! campaign's partial statistics frame by frame over TCP, demonstrate the
//! degradation ladder (a node-budgeted request returns the greedy incumbent
//! with `certified_optimal = false`), then restart the server with
//! deterministic chaos (worker panics, stalls, dropped/corrupted responses)
//! and show that every request still reaches a terminal answer.
//!
//! Run with `cargo run --release --example design_service`.

use automotive_cps::core::case_study;
use automotive_cps::flexray::FlexRayConfig;
use automotive_cps::sched::AllocatorConfig;
use automotive_cps::serve::{
    design_job, CampaignJob, ChaosConfig, DesignClient, DesignServer, Job, Outcome,
    RequestOptions, RetryPolicy, ServerConfig, SweepJob,
};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let socket = std::env::temp_dir().join(format!("cps-design-service-{}.sock", std::process::id()));
    let design = design_job(
        &case_study::derived_fleet_specs(),
        &AllocatorConfig::default(),
        &FlexRayConfig::paper_case_study(),
    );

    // ---- Nominal service ---------------------------------------------------
    let mut config = ServerConfig::new(&socket);
    // Port 0: the kernel picks a free port, `tcp_addr()` reports it.
    config.tcp_addr = Some("127.0.0.1:0".parse()?);
    let mut server = DesignServer::start(config)?;
    let tcp = server.tcp_addr().expect("tcp listener bound");
    let mut client = DesignClient::new(&socket);

    println!("design service listening on {} and tcp {tcp}", socket.display());

    println!("\n== degraded design (node budget 1) ==");
    match client.request(
        Job::Design(design.clone()),
        RequestOptions { node_budget: 1, ..RequestOptions::default() },
    )? {
        Outcome::Design(result) => println!(
            "  {} TT slots, certified_optimal = {} (greedy incumbent served)",
            result.slots.len(),
            result.certified_optimal
        ),
        other => println!("  unexpected outcome: {other:?}"),
    }

    println!("\n== exact fleet design (require_certified upgrades the cache) ==");
    match client.request(
        Job::Design(design.clone()),
        RequestOptions { require_certified: true, ..RequestOptions::default() },
    )? {
        Outcome::Design(result) => {
            println!(
                "  {} TT slots, certified_optimal = {}, from_cache = {}",
                result.slots.len(),
                result.certified_optimal,
                result.from_cache
            );
            for (index, slot) in result.slots.iter().enumerate() {
                let names: Vec<_> =
                    slot.iter().map(|&app| result.table[app as usize].name.as_str()).collect();
                println!("  slot {index}: {}", names.join(", "));
            }
        }
        other => println!("  unexpected outcome: {other:?}"),
    }

    println!("\n== bus-geometry sweep ==");
    let sweep = Job::Sweep(SweepJob {
        design: design.clone(),
        cycle_lengths: vec![0.005, 0.01],
        static_slot_counts: vec![3, 4, 10],
        slot_lengths: vec![],
    });
    match client.request(sweep, RequestOptions::default())? {
        Outcome::Sweep(result) => {
            println!("  complete = {}, from_cache = {}", result.complete, result.from_cache);
            for row in &result.rows {
                println!(
                    "  cycle {:>6.3} ms, {:>2} static slots: {}",
                    row.cycle_length * 1e3,
                    row.static_slot_count,
                    if row.feasible {
                        format!("feasible with {} slots (certified {})", row.slot_count, row.certified_optimal)
                    } else {
                        "infeasible".to_string()
                    }
                );
            }
        }
        other => println!("  unexpected outcome: {other:?}"),
    }

    println!("\n== robustness campaign ==");
    let campaign = Job::Campaign(CampaignJob {
        design: design.clone(),
        seed: 0xDA7E,
        drop_probabilities: vec![0.0, 0.2, 0.5],
        scenarios_per_intensity: 6,
        duration: 12.0,
        alpha: 0.05,
        progress_every: 0,
    });
    match client.request(campaign, RequestOptions::default())? {
        Outcome::Campaign(result) => {
            println!("  {} scenarios, from_cache = {}", result.total, result.from_cache);
            for family in &result.families {
                println!(
                    "  {:<14} {}/{} settled, P = {:.3} [{:.3}, {:.3}]",
                    family.label, family.successes, family.trials, family.estimate, family.lower,
                    family.upper
                );
            }
        }
        other => println!("  unexpected outcome: {other:?}"),
    }

    // ---- Streaming over TCP ------------------------------------------------
    // The same campaign, streamed: partial per-family statistics every 4
    // scenarios, terminal frame bit-identical to the blocking response.
    println!("\n== streamed robustness campaign (tcp, progress every 4 scenarios) ==");
    let mut tcp_client = DesignClient::tcp(tcp);
    let stream = tcp_client.stream_campaign(
        CampaignJob {
            design: design.clone(),
            seed: 0xDA7E,
            drop_probabilities: vec![0.0, 0.2, 0.5],
            scenarios_per_intensity: 6,
            duration: 12.0,
            alpha: 0.05,
            progress_every: 4,
        },
        RequestOptions::default(),
    )?;
    for item in stream {
        match item? {
            Outcome::Progress(progress) => {
                let worst = progress
                    .families
                    .iter()
                    .min_by(|a, b| a.estimate.total_cmp(&b.estimate))
                    .map(|family| format!("{} P≥{:.3}", family.label, family.lower))
                    .unwrap_or_default();
                println!(
                    "  progress: {:>2} scenarios aggregated, weakest family so far: {worst}",
                    progress.total
                );
            }
            Outcome::Campaign(result) => {
                println!("  terminal: {} scenarios, from_cache = {}", result.total, result.from_cache);
            }
            other => println!("  unexpected outcome: {other:?}"),
        }
    }

    let stats = server.stats();
    println!(
        "\nserver stats: {} requests, {} designs computed, {} cache hits, {} progress frames",
        stats.requests, stats.designs_computed, stats.cache_hits, stats.progress_frames
    );
    server.shutdown();

    // ---- Chaos -------------------------------------------------------------
    println!("\n== chaos: panics, stalls, dropped and corrupted responses ==");
    let mut config = ServerConfig::new(&socket);
    config.chaos = Some(ChaosConfig {
        seed: 99,
        worker_panic_probability: 0.25,
        worker_stall_probability: 0.10,
        stall_ms: 40,
        drop_connection_probability: 0.15,
        truncate_response_probability: 0.10,
        corrupt_response_probability: 0.10,
    });
    // The default panic hook would print a backtrace for every injected worker
    // panic; the server isolates them either way, so keep the demo readable.
    std::panic::set_hook(Box::new(|_| {}));
    let mut server = DesignServer::start(config)?;
    let mut client = DesignClient::new(&socket).with_retry_policy(RetryPolicy {
        max_attempts: 12,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        jitter_seed: 1,
    });
    for round in 0..8 {
        let outcome = client.request(Job::Design(design.clone()), RequestOptions::default())?;
        let label = match outcome {
            Outcome::Design(result) => format!(
                "design ok ({} slots, from_cache = {})",
                result.slots.len(),
                result.from_cache
            ),
            other => format!("{other:?}"),
        };
        println!("  request {round}: {label}");
    }
    let stats = server.stats();
    println!(
        "  survived: {} requests answered, {} worker panics isolated, {} sheds",
        stats.requests, stats.worker_panics, stats.shed
    );
    server.shutdown();
    Ok(())
}
