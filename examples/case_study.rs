//! Full Section V case study: the published Table I, the per-application
//! worst-case response-time analysis, the slot-allocation comparison, and —
//! as an extension — the same flow on a synthetic fleet derived end-to-end
//! from plant models.
//!
//! Run with `cargo run --release --example case_study`.

use automotive_cps::core::{case_study, experiments};
use automotive_cps::sched::{analyze_slot, ModelKind, WaitTimeMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: the paper's published Table I.
    let apps = case_study::paper_table1();
    println!("=== Table I (published) ===\n{}", experiments::render_table(&apps));

    let outcome = case_study::run_slot_allocation(&apps)?;
    println!("=== Slot allocation ===\n{}", experiments::render_allocation(&outcome, &apps));

    println!("=== Worst-case response times on the non-monotonic allocation ===");
    for (slot_index, slot) in outcome.non_monotonic.slots.iter().enumerate() {
        let analysis =
            analyze_slot(&apps, slot, ModelKind::NonMonotonic, WaitTimeMethod::ClosedFormBound)?;
        for entry in &analysis.analyses {
            println!(
                "  S{} {:<4} k_wait = {:>6.3} s  xi_hat = {:>6.3} s  deadline = {:>5.2} s  ({})",
                slot_index + 1,
                entry.application,
                entry.max_wait_time,
                entry.worst_case_response_time,
                entry.deadline,
                if entry.is_schedulable() { "ok" } else { "MISS" }
            );
        }
    }

    // Part 2: the same pipeline on a synthetic fleet derived from plant
    // models (plant -> controllers -> characterisation -> Table I -> slots).
    println!("\n=== Derived fleet (synthetic plants, end-to-end pipeline) ===");
    let fleet = case_study::derived_fleet()?;
    let table = case_study::derive_table(&fleet)?;
    println!("{}", experiments::render_table(&table));
    let derived_outcome = case_study::run_slot_allocation(&table)?;
    println!("{}", experiments::render_allocation(&derived_outcome, &table));
    Ok(())
}
