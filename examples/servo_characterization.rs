//! Figure 3 reproduction: characterise the servo rig's dwell-time /
//! wait-time relation and fit the Figure 4 models to it.
//!
//! Run with `cargo run --release --example servo_characterization`.

use automotive_cps::core::{experiments, fit_non_monotonic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let curve = experiments::figure3_dwell_wait_curve()?;
    println!("=== Figure 3: measured dwell time vs. wait time (servo rig) ===");
    println!("{}", experiments::render_curve(&curve, 5));
    println!("non-monotonic (rises then falls): {}", curve.is_non_monotonic());

    let (xi_tt, xi_et, xi_m, k_p) = fit_non_monotonic(&curve)?;
    println!("\n=== Figure 4: fitted two-segment model ===");
    println!("xi_tt = {xi_tt:.2} s, xi_m = {xi_m:.2} s at k_p = {k_p:.2} s, xi_et = {xi_et:.2} s");
    println!(
        "conservative monotonic intercept xi'_m = {:.2} s",
        xi_m / (1.0 - k_p / xi_et)
    );

    let data = experiments::figure4_models()?;
    println!(
        "model orderings hold (conservative >= non-monotonic >= measurement): {}",
        experiments::figure4_orderings_hold(&data)
    );
    Ok(())
}
