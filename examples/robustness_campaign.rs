//! Streaming Monte-Carlo robustness campaign: sweep the FlexRay fault
//! intensity (frame-drop probability with a Gilbert–Elliott burst channel,
//! payload corruption and dynamic-segment contention) over the derived
//! six-application fleet and report, per intensity, the settling-time
//! statistics and the statistical model-checking readout
//! P(settle ≤ deadline) with exact Clopper–Pearson confidence intervals.
//!
//! The campaign is streamed: scenarios are generated on demand from the
//! campaign seed, worker threads replay them on reset-and-rerun engines,
//! and only O(workers) of state is ever alive — the same code path handles
//! a hundred scenarios or a million. The result is bit-identical for any
//! worker count.
//!
//! Run with `cargo run --release --example robustness_campaign`.

use automotive_cps::core::{case_study, DesignedFleet, RobustnessCampaign, RobustnessSweep};
use automotive_cps::flexray::{FlexRayConfig, GilbertElliott};
use automotive_cps::sched::AllocatorConfig;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = Arc::new(DesignedFleet::design(
        case_study::derived_fleet_specs(),
        &AllocatorConfig::default(),
        FlexRayConfig::paper_case_study(),
    )?);

    // Five fault intensities, 40 randomised scenarios each: disturbance
    // scale drawn uniformly from [0.8, 1.2], bursty losses, light payload
    // corruption, background traffic in the dynamic segment and sensor
    // noise on the runtime's mode decisions.
    let sweep = RobustnessSweep::new(vec![0.0, 0.05, 0.1, 0.2, 0.4, 0.8], 40, 12.0)
        .with_disturbance_range(0.8, 1.2)
        .with_burst(GilbertElliott {
            degrade_probability: 0.1,
            recover_probability: 0.4,
            bad_drop_probability: 0.8,
        })
        .with_corruption(0.01)
        .with_dynamic_contention(6)
        .with_sensor_noise(0.01);

    let campaign = RobustnessCampaign::new(fleet, 2019);
    println!(
        "=== Robustness campaign: {} scenarios across {} fault intensities ===",
        sweep.scenarios_per_intensity * sweep.drop_probabilities.len() as u64,
        sweep.drop_probabilities.len(),
    );
    let stats = campaign.run(&sweep)?;

    println!(
        "\n{:<14} {:>5} {:>7} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "family", "runs", "settled", "mean T_s", "p50 T_s", "p95 T_s", "peak p95", "TT share"
    );
    for family in &stats.families {
        println!(
            "{:<14} {:>5} {:>7} {:>9} {:>9} {:>9} {:>8.3} {:>8.4}",
            family.label,
            family.scenarios,
            family.settled,
            if family.settling_time.count() > 0 {
                format!("{:.3}", family.settling_time.mean())
            } else {
                "-".to_string()
            },
            family.settling_p50.estimate().map(|q| format!("{q:.3}")).unwrap_or_else(|| "-".into()),
            family.settling_p95.estimate().map(|q| format!("{q:.3}")).unwrap_or_else(|| "-".into()),
            family.peak_p95.estimate().unwrap_or(f64::NAN),
            family.tt_share.mean(),
        );
    }

    println!("\nstatistical model checking: P(settle <= deadline), 95% Clopper-Pearson");
    for p in stats.settling_probabilities(0.05) {
        println!(
            "  {:<14} {:>3}/{:<3}  P = {:.3}  CI [{:.3}, {:.3}]",
            p.label, p.successes, p.trials, p.estimate, p.lower, p.upper
        );
    }

    let nominal = &stats.settling_probabilities(0.05)[0];
    println!(
        "\nfault-free family settles every run: {} (the paper's nominal design point)",
        nominal.successes == nominal.trials
    );
    Ok(())
}
