//! Figure 5 reproduction: co-simulate the six-application fleet over the
//! FlexRay bus with the dynamic resource-allocation scheme and print the
//! disturbance responses, slot usage and bus statistics.
//!
//! Run with `cargo run --release --example cosim_responses`.

use automotive_cps::control::CommunicationMode;
use automotive_cps::core::experiments;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = experiments::figure5_cosimulation(12.0)?;
    println!("=== Figure 5: co-simulated responses (all disturbances at t = 0) ===");
    println!("{}", experiments::render_cosim(&trace));

    // Compact ASCII sketch of each response: norm every 0.5 s, with the
    // communication mode marked (E = event-triggered, T = time-triggered).
    println!("norm / mode every 0.5 s:");
    for app in &trace.apps {
        let samples: Vec<String> = app
            .points
            .iter()
            .step_by((0.5 / trace.period) as usize)
            .map(|p| {
                let marker = match p.mode {
                    CommunicationMode::TimeTriggered => 'T',
                    CommunicationMode::EventTriggered => 'E',
                };
                format!("{:.2}{marker}", p.norm)
            })
            .collect();
        println!("  {:<16} {}", app.name, samples.join(" "));
    }

    println!(
        "\nall deadlines met: {} (paper: every application settles before its deadline)",
        trace.all_deadlines_met()
    );
    Ok(())
}
