//! Quickstart: reproduce the paper's headline result in a few lines.
//!
//! Run with `cargo run --example quickstart`.

use automotive_cps::core::case_study;
use automotive_cps::core::experiments;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table I, exactly as published.
    let apps = case_study::paper_table1();
    println!("Table I (published timing parameters):\n{}", experiments::render_table(&apps));

    // Allocate TT slots with the paper's non-monotonic dwell-time model and
    // with the conservative monotonic model of earlier work.
    let outcome = case_study::run_slot_allocation(&apps)?;
    println!("{}", experiments::render_allocation(&outcome, &apps));

    assert_eq!(outcome.non_monotonic_slots, 3);
    assert_eq!(outcome.monotonic_slots, 5);
    println!(
        "Reproduced: the conservative monotonic model needs {:.0} % more TT slots.",
        outcome.overhead_fraction * 100.0
    );
    Ok(())
}
