//! Resource-dimensioning study on randomly generated application fleets:
//! how many TT slots do the non-monotonic and the conservative monotonic
//! dwell-time models require as the fleet grows — and how does the bus's
//! slot geometry (frame payload → slot length Ψ) move the design space?
//!
//! Run with `cargo run --release --example fleet_dimensioning`.

use automotive_cps::core::{case_study, BusConfigSweep};
use automotive_cps::flexray::{FlexRayConfig, DEFAULT_BIT_RATE};
use automotive_cps::sched::{
    allocate_slots, AllocationStrategy, AllocatorConfig, AppTimingParams, ModelKind,
};

/// Deterministic pseudo-random fleet generator (same spirit as the paper's
/// case study: deadlines between the pure-TT and pure-ET response times).
fn synthetic_fleet(n: usize, seed: u64) -> Vec<AppTimingParams> {
    let mut state = seed.max(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    (0..n)
        .map(|i| {
            let xi_tt = 0.3 + next() * 2.0;
            let xi_et = xi_tt * (2.0 + next() * 3.0);
            let xi_m = xi_tt * (1.0 + next() * 0.8);
            let k_p = xi_et * (0.1 + next() * 0.3);
            let deadline = xi_m + k_p + 1.0 + next() * 4.0;
            let inter_arrival = deadline + 5.0 + next() * 200.0;
            AppTimingParams::new(format!("A{i}"), inter_arrival, deadline, xi_tt, xi_et, xi_m, k_p)
                .expect("generated parameters are valid")
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fleet size | non-monotonic slots | conservative slots | saving");
    for &size in &[4usize, 6, 8, 12, 16, 24] {
        let fleet = synthetic_fleet(size, 2024);
        let config = AllocatorConfig {
            strategy: AllocationStrategy::FirstFit,
            max_slots: size,
            ..AllocatorConfig::default()
        };
        let non_monotonic = allocate_slots(&fleet, &config)?;
        let conservative = allocate_slots(
            &fleet,
            &AllocatorConfig { model: ModelKind::ConservativeMonotonic, ..config },
        )?;
        let saving = 100.0
            * (conservative.slot_count() as f64 - non_monotonic.slot_count() as f64)
            / conservative.slot_count() as f64;
        println!(
            "{:>10} | {:>19} | {:>18} | {:>5.1} %",
            size,
            non_monotonic.slot_count(),
            conservative.slot_count(),
            saving
        );
    }
    println!("\nThe non-monotonic model never needs more slots than the conservative one,");
    println!("mirroring the paper's 3-vs-5 result on its six-application case study.");

    // The bus-geometry axis on the paper's fleet: growing frame payloads
    // stretch the static slot length Ψ, which both shrinks how many slots
    // fit the 5 ms cycle and lengthens every per-slot occupancy the
    // wait-time analysis sees.
    println!("\npayload | slot length psi | valid candidate buses | feasible slot maps");
    let table = case_study::paper_table1();
    let base = FlexRayConfig::paper_case_study();
    for &payload_words in &[32usize, 64, 127] {
        let psi = FlexRayConfig::static_slot_length_for_payload(payload_words, DEFAULT_BIT_RATE)?;
        let sweep = BusConfigSweep::new(base)
            .with_static_slot_counts(vec![3, 4, 6, 10])
            .with_slot_lengths(vec![psi]);
        let configs = sweep.configs();
        let scenarios = sweep.scenarios(&table, &AllocatorConfig::default(), 1.0);
        println!(
            "{:>4} words | {:>10.1} us | {:>21} | {:>18}",
            payload_words,
            psi * 1e6,
            configs.len(),
            scenarios.len()
        );
    }
    println!("\nLonger payloads leave fewer feasible buses and slot maps: the slot budget");
    println!("shrinks with Psi while the per-slot transmission overhead stretches waits.");
    Ok(())
}
