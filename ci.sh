#!/usr/bin/env bash
# CI pipeline for the automotive CPS reproduction workspace.
#
#   ./ci.sh             full pipeline: release build, tests, docs gate
#                       (rustdoc -D warnings + doctests), clippy, bench smoke
#   ./ci.sh quick       build + tests only
#   ./ci.sh perf        run the perf bench set and append this commit's results
#                       to BENCH_results.json, the machine-readable perf
#                       trajectory ({"<git describe>": {bench -> ns/iter}, ...});
#                       re-running the same commit upserts its own entries,
#                       other commits' history is never touched
#   ./ci.sh perf-check  read the keyed history and compare this commit's
#                       entries against the previous key: fails when any
#                       benchmark's mean regressed by more than
#                       CPS_PERF_CHECK_THRESHOLD percent (default 25).
#                       A missing history file or a history without entries
#                       for this commit is "no baseline": reported and exit 0,
#                       so fresh clones and first-run pipelines don't fail.
#   ./ci.sh soak        long-running acceptance checks: the million-scenario
#                       streaming campaign (tests/robustness_campaign.rs,
#                       normally #[ignore]d) in release mode.
#
# Everything runs offline: the two external dev-dependencies (criterion,
# proptest) are API-compatible shims vendored under crates/compat/.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

# History key for perf/perf-check: `git describe`, with the dirty marker
# decided while ignoring BENCH_results.json itself — the perf run modifies
# that file, which must not re-key the very numbers it just recorded.
# `--untracked-files=no` mirrors `git describe --dirty` semantics (untracked
# files never mark the tree dirty); the pathspec excludes exactly the
# results file, nothing that merely contains its name.
bench_key() {
    local base
    base="$(git describe --always 2>/dev/null || echo unversioned)"
    if git status --porcelain --untracked-files=no -- ':(exclude)BENCH_results.json' \
            2>/dev/null | grep -q .; then
        base="$base-dirty"
    fi
    echo "$base"
}

if [[ "${1:-}" == "perf" ]]; then
    # History key: honour an explicit CPS_BENCH_KEY, else `git describe`.
    # The canonical flow keys results to the commit that produced them:
    # commit the code first, run `./ci.sh perf` on the clean tree, then
    # commit BENCH_results.json (a `-dirty` key means the numbers came from
    # an uncommitted state and should be re-measured before committing;
    # BENCH_results.json itself is ignored when deciding dirtiness).
    CPS_BENCH_KEY="${CPS_BENCH_KEY:-$(bench_key)}"
    step "perf bench set -> BENCH_results.json (history key: $CPS_BENCH_KEY)"
    export CPS_BENCH_JSON="$PWD/BENCH_results.json"
    export CPS_BENCH_KEY
    cargo bench -p cps-bench \
        --bench fleet_design \
        --bench characterize \
        --bench kernel_step \
        --bench scenario_throughput \
        --bench campaign_throughput \
        --bench allocation_opt \
        --bench service_roundtrip
    echo
    echo "BENCH_results.json:"
    cat BENCH_results.json
    exit 0
fi

if [[ "${1:-}" == "perf-check" ]]; then
    # Same key resolution as `./ci.sh perf`, so check follows record.
    CPS_BENCH_KEY="${CPS_BENCH_KEY:-$(bench_key)}"
    step "perf-check: $CPS_BENCH_KEY vs previous key in BENCH_results.json"
    CPS_BENCH_KEY="$CPS_BENCH_KEY" python3 - <<'PYEOF'
import json, os, sys

threshold = float(os.environ.get("CPS_PERF_CHECK_THRESHOLD", "25"))
key = os.environ["CPS_BENCH_KEY"]
# Both "no history file" and "no entries recorded for this commit" mean
# there is nothing to compare yet: that's a fresh clone or a first run,
# not a regression, so report "no baseline" and succeed.
try:
    with open("BENCH_results.json") as handle:
        history = json.load(handle)  # insertion order == recording order
except FileNotFoundError:
    print("no baseline: BENCH_results.json not found - run ./ci.sh perf to record one")
    sys.exit(0)

keys = list(history)
if key not in keys:
    print(
        f"no baseline: no entries for {key!r} in BENCH_results.json "
        f"(have: {', '.join(keys)}) - run ./ci.sh perf on this commit to record them"
    )
    sys.exit(0)
previous_keys = keys[: keys.index(key)]
if not previous_keys:
    print(f"{key} is the oldest key in the history - nothing to compare against")
    sys.exit(0)
previous = previous_keys[-1]

current_set = history[key]
previous_set = history[previous]
shared = [name for name in current_set if name in previous_set]
if not shared:
    sys.exit(f"no benchmarks shared between {key!r} and {previous!r}")

regressions = []
print(f"comparing {len(shared)} benchmarks: {key} (current) vs {previous} (previous)")
for name in shared:
    now, then = current_set[name], previous_set[name]
    change = (now - then) / then * 100.0
    marker = ""
    if change > threshold:
        marker = f"  <-- REGRESSION (> {threshold:.0f}%)"
        regressions.append((name, change))
    print(f"  {name:<55} {then:>14.2f} -> {now:>14.2f} ns/iter  {change:+7.1f}%{marker}")
only_new = sorted(set(current_set) - set(previous_set))
if only_new:
    print(f"new benchmarks (no history yet): {', '.join(only_new)}")

if regressions:
    print(f"\nFAIL: {len(regressions)} mean regression(s) beyond {threshold:.0f}%:")
    for name, change in regressions:
        print(f"  {name}: {change:+.1f}%")
    sys.exit(1)
print(f"\nperf-check passed: no mean regression beyond {threshold:.0f}%")
PYEOF
    exit 0
fi

if [[ "${1:-}" == "soak" ]]; then
    # The million-scenario streaming campaign is #[ignore]d in the default
    # test run (minutes of wall clock); this mode is its home in CI.
    step "soak: million-scenario streaming campaign (release, -- --ignored)"
    cargo test --release -q -p automotive-cps --test robustness_campaign -- --ignored
    echo
    echo "soak passed."
    exit 0
fi

step "cargo build --release (workspace)"
cargo build --release --workspace

step "cargo test -q (workspace)"
cargo test -q --workspace

# The exact-allocator oracle suite is the safety net behind every optimality
# claim in the repo, and the robustness-campaign suite behind every
# fault-injection/determinism claim; fail loudly if either ever stops being
# collected (renamed target, filtered out, accidentally deleted) instead of
# silently passing.
step "oracle suite is collected (tests/allocation_optimal.rs)"
# (plain grep, not -q: early exit would break the pipe under pipefail)
if ! cargo test -q -p automotive-cps --test allocation_optimal -- --list \
        | grep ": test" > /dev/null; then
    echo "ERROR: the allocation_optimal oracle suite was skipped or is empty" >&2
    exit 1
fi

# The portfolio regression suite carries the parallel allocator's
# determinism contract (bit-identical optima for every worker count) and
# the committed node-count fixture; same reasoning, same gate.
step "portfolio suite is collected (tests/allocation_portfolio.rs)"
if ! cargo test -q -p automotive-cps --test allocation_portfolio -- --list \
        | grep ": test" > /dev/null; then
    echo "ERROR: the allocation_portfolio regression suite was skipped or is empty" >&2
    exit 1
fi

step "campaign/fault suite is collected (tests/robustness_campaign.rs, tests/zero_alloc.rs)"
if ! cargo test -q -p automotive-cps --test robustness_campaign -- --list \
        | grep ": test" > /dev/null; then
    echo "ERROR: the robustness_campaign suite was skipped or is empty" >&2
    exit 1
fi
if ! cargo test -q -p automotive-cps --test zero_alloc -- --list \
        | grep ": test" > /dev/null; then
    echo "ERROR: the zero_alloc suite was skipped or is empty" >&2
    exit 1
fi

# The batched-equivalence suite carries the lane-batched stepping's
# bit-identity contract (kernel, campaign and scenario layers); same
# reasoning, same gate.
step "batched-equivalence suite is collected (tests/batched_equivalence.rs)"
if ! cargo test -q -p automotive-cps --test batched_equivalence -- --list \
        | grep ": test" > /dev/null; then
    echo "ERROR: the batched_equivalence suite was skipped or is empty" >&2
    exit 1
fi

# The design-service suite carries every fail-operational guarantee the serve
# crate makes (bit-identical nominal path, load shedding, panic isolation,
# deterministic chaos replay); same reasoning, same gate. The scenario matrix
# is transport-parameterised (every scenario once over Unix, once over TCP)
# and includes the streaming campaign suite — verify each axis is still
# collected by name, so a refactor can't silently drop a whole transport or
# the streaming coverage.
step "service suite is collected (tests/design_service.rs: unix + tcp + streaming)"
service_tests="$(cargo test -q -p automotive-cps --test design_service -- --list)"
if ! grep ": test" > /dev/null <<<"$service_tests"; then
    echo "ERROR: the design_service suite was skipped or is empty" >&2
    exit 1
fi
for axis in "_unix: test" "_tcp: test" "streamed_terminal_frame" "dropping_the_stream"; do
    if ! grep -- "$axis" > /dev/null <<<"$service_tests"; then
        echo "ERROR: design_service lost its '$axis' coverage axis" >&2
        exit 1
    fi
done

if [[ "${1:-}" == "quick" ]]; then
    echo "quick mode: skipping docs gate, clippy and bench smoke"
    exit 0
fi

# Docs gate: rustdoc must build warning-free (broken intra-doc links, missing
# docs on public items) and every doctested example must pass — the examples
# in the crate-level docs and on the main entry points cannot rot.
step "docs gate: RUSTDOCFLAGS='-D warnings' cargo doc --no-deps + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet
cargo test -q --workspace --doc

step "cargo clippy -D warnings (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo bench -- --test (smoke: every benchmark body runs once)"
cargo bench -p cps-bench -- --test

echo
echo "CI pipeline passed."
