#!/usr/bin/env bash
# CI pipeline for the automotive CPS reproduction workspace.
#
#   ./ci.sh          full pipeline: release build, tests, clippy, bench smoke
#   ./ci.sh quick    build + tests only
#   ./ci.sh perf     run the perf bench set and (re)write BENCH_results.json,
#                    the machine-readable perf trajectory (bench -> ns/iter)
#
# Everything runs offline: the two external dev-dependencies (criterion,
# proptest) are API-compatible shims vendored under crates/compat/.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

if [[ "${1:-}" == "perf" ]]; then
    step "perf bench set -> BENCH_results.json"
    rm -f BENCH_results.json
    export CPS_BENCH_JSON="$PWD/BENCH_results.json"
    cargo bench -p cps-bench \
        --bench fleet_design \
        --bench characterize \
        --bench kernel_step \
        --bench scenario_throughput
    echo
    echo "BENCH_results.json:"
    cat BENCH_results.json
    exit 0
fi

step "cargo build --release (workspace)"
cargo build --release --workspace

step "cargo test -q (workspace)"
cargo test -q --workspace

if [[ "${1:-}" == "quick" ]]; then
    echo "quick mode: skipping clippy and bench smoke"
    exit 0
fi

step "cargo clippy -D warnings (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo bench -- --test (smoke: every benchmark body runs once)"
cargo bench -p cps-bench -- --test

echo
echo "CI pipeline passed."
