#!/usr/bin/env bash
# CI pipeline for the automotive CPS reproduction workspace.
#
#   ./ci.sh          full pipeline: release build, tests, clippy, bench smoke
#   ./ci.sh quick    build + tests only
#   ./ci.sh perf     run the perf bench set and append this commit's results
#                    to BENCH_results.json, the machine-readable perf
#                    trajectory ({"<git describe>": {bench -> ns/iter}, ...});
#                    re-running the same commit upserts its own entries, other
#                    commits' history is never touched
#
# Everything runs offline: the two external dev-dependencies (criterion,
# proptest) are API-compatible shims vendored under crates/compat/.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

if [[ "${1:-}" == "perf" ]]; then
    # History key: honour an explicit CPS_BENCH_KEY, else `git describe`.
    # The canonical flow keys results to the commit that produced them:
    # commit the code first, run `./ci.sh perf` on the clean tree, then
    # commit BENCH_results.json (a `-dirty` key means the numbers came from
    # an uncommitted state and should be re-measured before committing).
    CPS_BENCH_KEY="${CPS_BENCH_KEY:-$(git describe --always --dirty 2>/dev/null || echo unversioned)}"
    step "perf bench set -> BENCH_results.json (history key: $CPS_BENCH_KEY)"
    export CPS_BENCH_JSON="$PWD/BENCH_results.json"
    export CPS_BENCH_KEY
    cargo bench -p cps-bench \
        --bench fleet_design \
        --bench characterize \
        --bench kernel_step \
        --bench scenario_throughput \
        --bench allocation_opt
    echo
    echo "BENCH_results.json:"
    cat BENCH_results.json
    exit 0
fi

step "cargo build --release (workspace)"
cargo build --release --workspace

step "cargo test -q (workspace)"
cargo test -q --workspace

# The exact-allocator oracle suite is the safety net behind every optimality
# claim in the repo; fail loudly if it ever stops being collected (renamed
# target, filtered out, accidentally deleted) instead of silently passing.
step "oracle suite is collected (tests/allocation_optimal.rs)"
# (plain grep, not -q: early exit would break the pipe under pipefail)
if ! cargo test -q -p automotive-cps --test allocation_optimal -- --list \
        | grep ": test" > /dev/null; then
    echo "ERROR: the allocation_optimal oracle suite was skipped or is empty" >&2
    exit 1
fi

if [[ "${1:-}" == "quick" ]]; then
    echo "quick mode: skipping clippy and bench smoke"
    exit 0
fi

step "cargo clippy -D warnings (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo bench -- --test (smoke: every benchmark body runs once)"
cargo bench -p cps-bench -- --test

echo
echo "CI pipeline passed."
