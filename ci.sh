#!/usr/bin/env bash
# CI pipeline for the automotive CPS reproduction workspace.
#
#   ./ci.sh          full pipeline: release build, tests, clippy, bench smoke
#   ./ci.sh quick    build + tests only
#
# Everything runs offline: the two external dev-dependencies (criterion,
# proptest) are API-compatible shims vendored under crates/compat/.

set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release (workspace)"
cargo build --release --workspace

step "cargo test -q (workspace)"
cargo test -q --workspace

if [[ "${1:-}" == "quick" ]]; then
    echo "quick mode: skipping clippy and bench smoke"
    exit 0
fi

step "cargo clippy -D warnings (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo bench -- --test (smoke: every benchmark body runs once)"
cargo bench -p cps-bench -- --test

echo
echo "CI pipeline passed."
