//! Workspace façade for the DATE 2019 reproduction
//! *Exploiting System Dynamics for Resource-Efficient Automotive CPS Design*.
//!
//! This crate simply re-exports the member crates so that the examples and
//! integration tests can use one coherent namespace:
//!
//! * [`linalg`] — dense small-matrix linear algebra substrate.
//! * [`control`] — LTI modelling, discretisation with input delay, LQR design,
//!   switched-system analysis and the automotive plant library.
//! * [`flexray`] — cycle-accurate hybrid (TT + ET) FlexRay bus simulator.
//! * [`sched`] — dwell-time models, maximum-wait-time / worst-case response
//!   time analysis and TT-slot allocation heuristics.
//! * [`core`] — the paper's co-design flow: application modelling,
//!   dwell/wait characterisation, Table-I derivation, the dynamic
//!   resource-allocation runtime and the plant/bus co-simulation engine.
//! * [`serve`] — the fail-operational design service: Unix-socket server
//!   with deadlines, load shedding, panic isolation, a content-addressed
//!   artifact cache and deterministic chaos testing.
//!
//! # Example
//!
//! ```
//! use automotive_cps::core::case_study;
//!
//! let apps = case_study::paper_table1();
//! let outcome = case_study::run_slot_allocation(&apps).expect("allocation succeeds");
//! assert!(outcome.non_monotonic_slots < outcome.monotonic_slots);
//! ```

pub use cps_control as control;
pub use cps_core as core;
pub use cps_flexray as flexray;
pub use cps_linalg as linalg;
pub use cps_sched as sched;
pub use cps_serve as serve;
